"""Backend protocol: quantum jobs yielding energy estimates.

The job abstraction mirrors the paper's Fig. 7: a VQA run is a sequence of
jobs; each job is a batch of circuits executed close together in time and
therefore exposed to the *same* transient noise instance.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np


def batching_disabled() -> bool:
    """Whether ``REPRO_BATCH`` disables the batched evaluation fast path.

    ``REPRO_BATCH=0`` (or ``off``/``false``/``serial``) forces every
    evaluation down the one-call-per-job serial path — the debugging
    escape hatch for isolating batched-vs-serial numeric differences.
    """
    value = os.environ.get("REPRO_BATCH", "").strip().lower()
    return value in ("0", "off", "false", "serial")


class EnergyJob:
    """One quantum job: evaluates energies under a fixed noise instant."""

    def __init__(self, backend: "EnergyBackend", index: int):
        self.backend = backend
        self.index = index
        self.circuits_run = 0

    def energy(self, theta: np.ndarray) -> float:
        """Objective estimate for parameters ``theta`` within this job."""
        self.circuits_run += 1
        self.backend.total_circuits += 1
        return self.backend._evaluate(np.asarray(theta, dtype=float), self.index)


class EnergyBackend:
    """Base backend; subclasses implement ``_evaluate``.

    Backends whose per-job evaluation is independent of job *creation*
    order (everything keyed off ``job_index`` plus a sequentially consumed
    RNG) may set ``supports_batch = True`` and override
    :meth:`_evaluate_batch` to vectorize the expensive ideal-energy part
    across a whole block of evaluations. Job accounting — one job per
    evaluation, one circuit per job — is identical on both paths.
    """

    #: Opt-in flag for the batched evaluation fast path.
    supports_batch = False

    def __init__(self) -> None:
        self.job_counter = 0
        self.total_circuits = 0

    def new_job(self) -> EnergyJob:
        """Open the next job; advances the backend's noise clock."""
        job = EnergyJob(self, self.job_counter)
        self.job_counter += 1
        return job

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        raise NotImplementedError

    def _evaluate_batch(
        self, thetas: np.ndarray, job_indices: Sequence[int]
    ) -> np.ndarray:
        """Batched ``_evaluate``; override together with ``supports_batch``.

        Implementations must consume any backend RNG in the same order as
        ``[_evaluate(t, j) for t, j in zip(thetas, job_indices)]`` so that
        batched and serial execution draw identical noise streams.
        """
        return np.array(
            [self._evaluate(t, j) for t, j in zip(thetas, job_indices)],
            dtype=float,
        )

    def evaluate_jobs(self, thetas: np.ndarray) -> np.ndarray:
        """Evaluate a ``(B, P)`` block, one quantum job per row.

        Batch-capable backends open all jobs up front and evaluate the
        block in one :meth:`_evaluate_batch` call; the rest interleave
        ``new_job``/``energy`` exactly like serial callers (some backends
        — e.g. the Kalman wrapper — couple evaluation to job creation
        order).
        """
        thetas = np.asarray(thetas, dtype=float)
        if not self.supports_batch or batching_disabled():
            return np.array(
                [self.new_job().energy(theta) for theta in thetas], dtype=float
            )
        jobs = [self.new_job() for _ in range(len(thetas))]
        for job in jobs:
            job.circuits_run += 1
        self.total_circuits += len(jobs)
        return self._evaluate_batch(thetas, [job.index for job in jobs])

    def reset(self) -> None:
        self.job_counter = 0
        self.total_circuits = 0
