"""The noise-free backend (the paper's orange reference line)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends.base import EnergyBackend
from repro.vqa.objective import EnergyObjective


class IdealBackend(EnergyBackend):
    """Exact statevector energies; no static noise, no transients."""

    supports_batch = True

    def __init__(self, objective: EnergyObjective):
        super().__init__()
        self.objective = objective

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        return self.objective.ideal_energy(theta)

    def _evaluate_batch(
        self, thetas: np.ndarray, job_indices: Sequence[int]
    ) -> np.ndarray:
        return self.objective.batch_energies(thetas)
