"""The shot-level counts backend.

Runs real circuits: density-matrix evolution with Kraus noise, readout
corruption, optional confusion-matrix mitigation, and measurement-based
energy estimation via qubit-wise-commuting term groups. Slow compared to
the energy-level backends but exercises the full physical pipeline; tests
use it to validate the global-depolarizing energy approximation.

Device-aware execution routes through the compiler's single
:func:`~repro.compiler.transpile_then_compile` entry point: pass a
``device`` and every circuit (including the per-group measurement-basis
rotations) is laid out, routed and basis-translated by the one transpiler
pipeline — there is no separate basis-translation path in the counts
backend — and outcome distributions are read back through the transpiler's
final qubit permutation into logical order.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import DeviceCompilation, transpile_then_compile
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError, ReadoutMitigator
from repro.operators.grouping import group_commuting_terms, measurement_bases
from repro.operators.measurement_basis import basis_rotation_circuit, diagonal_value
from repro.operators.pauli_sum import PauliSum
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import counts_from_probabilities
from repro.utils.rng import SeedLike, ensure_rng


class CountsBackend:
    """Circuit execution returning measurement counts.

    With ``device`` set, circuits are lowered through
    :func:`repro.compiler.transpile_then_compile` (layout -> routing ->
    native basis) before simulation, and all counts / probabilities are
    reported in *logical* qubit order regardless of routing permutations.
    """

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        readout_error: Optional[ReadoutError] = None,
        mitigate_readout: bool = False,
        seed: SeedLike = None,
        device=None,
        layout_method: str = "chain",
    ):
        self.noise_model = noise_model
        self.readout_error = readout_error
        self.mitigator = (
            ReadoutMitigator(readout_error)
            if (mitigate_readout and readout_error is not None)
            else None
        )
        self.rng = ensure_rng(seed)
        self.device = device
        self.layout_method = layout_method

    def _lower(self, circuit: QuantumCircuit) -> DeviceCompilation:
        """Device lowering through the compiler's one entry point."""
        return transpile_then_compile(
            circuit, self.device, layout_method=self.layout_method
        )

    @staticmethod
    def _logical_probabilities(
        probs: np.ndarray, compiled: DeviceCompilation, num_logical: int
    ) -> np.ndarray:
        """Marginalize an executed distribution back into logical order.

        Each logical qubit ``v`` ends the (trimmed, routed) circuit at
        ``compiled.logical_positions[v]``; every other live qubit is
        traced out.
        """
        num_physical = int(np.log2(probs.size))
        positions = list(compiled.logical_positions[:num_logical])
        tensor = probs.reshape((2,) * num_physical)
        tensor = np.moveaxis(tensor, positions, range(num_logical))
        return tensor.reshape(2**num_logical, -1).sum(axis=1)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Noisy outcome distribution of a bound circuit (logical order)."""
        if self.device is not None:
            compiled = self._lower(circuit)
            simulator = DensityMatrixSimulator(compiled.circuit.num_qubits)
            if self.noise_model is None:
                # Noise-free: execute the plan that was already built —
                # no second lowering through the plain compile cache.
                rho = simulator.run_plan(compiled.plan)
            else:
                rho = simulator.run_circuit(
                    compiled.circuit, noise_model=self.noise_model
                )
            probs = self._logical_probabilities(
                simulator.probabilities(rho), compiled, circuit.num_qubits
            )
        else:
            simulator = DensityMatrixSimulator(circuit.num_qubits)
            rho = simulator.run_circuit(circuit, noise_model=self.noise_model)
            probs = simulator.probabilities(rho)
        if self.readout_error is not None:
            probs = self.readout_error.apply_to_probabilities(probs)
        return probs

    def run(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        """Sample counts from a bound circuit."""
        probs = self.probabilities(circuit)
        return counts_from_probabilities(probs, shots, self.rng)

    def estimate_energy(
        self,
        circuit: QuantumCircuit,
        hamiltonian: PauliSum,
        shots_per_group: int = 4096,
    ) -> float:
        """Measurement-based energy estimate with QWC grouping.

        Each group gets its own basis-rotated execution. With a mitigator
        configured, counts are corrected before term evaluation (the
        paper's baseline always runs measurement error mitigation).
        """
        if circuit.num_qubits != hamiltonian.num_qubits:
            raise ValueError("circuit/Hamiltonian qubit mismatch")
        energy = 0.0
        for group in group_commuting_terms(hamiltonian):
            non_identity = [t for t in group if not t.pauli.is_identity]
            for term in group:
                if term.pauli.is_identity:
                    energy += term.coefficient
            if not non_identity:
                continue
            basis = measurement_bases(non_identity)
            measured = circuit.copy()
            measured.compose(basis_rotation_circuit(basis))
            counts = self.run(measured, shots_per_group)
            if self.mitigator is not None:
                quasi = self.mitigator.mitigate_counts(counts)
                for term in non_identity:
                    value = sum(
                        diagonal_value(term.pauli, bits) * p
                        for bits, p in quasi.items()
                    )
                    energy += term.coefficient * value
            else:
                total = sum(counts.values())
                for term in non_identity:
                    accum = sum(
                        diagonal_value(term.pauli, bits) * count
                        for bits, count in counts.items()
                    )
                    energy += term.coefficient * accum / total
        return energy
