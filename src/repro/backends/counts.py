"""The shot-level counts backend.

Runs real circuits: density-matrix evolution with Kraus noise, readout
corruption, optional confusion-matrix mitigation, and measurement-based
energy estimation via qubit-wise-commuting term groups. Slow compared to
the energy-level backends but exercises the full physical pipeline; tests
use it to validate the global-depolarizing energy approximation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError, ReadoutMitigator
from repro.operators.grouping import group_commuting_terms, measurement_bases
from repro.operators.measurement_basis import basis_rotation_circuit, diagonal_value
from repro.operators.pauli_sum import PauliSum
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import counts_from_probabilities
from repro.utils.rng import SeedLike, ensure_rng


class CountsBackend:
    """Circuit execution returning measurement counts."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        readout_error: Optional[ReadoutError] = None,
        mitigate_readout: bool = False,
        seed: SeedLike = None,
    ):
        self.noise_model = noise_model
        self.readout_error = readout_error
        self.mitigator = (
            ReadoutMitigator(readout_error)
            if (mitigate_readout and readout_error is not None)
            else None
        )
        self.rng = ensure_rng(seed)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Noisy outcome distribution of a bound circuit."""
        simulator = DensityMatrixSimulator(circuit.num_qubits)
        rho = simulator.run_circuit(circuit, noise_model=self.noise_model)
        probs = simulator.probabilities(rho)
        if self.readout_error is not None:
            probs = self.readout_error.apply_to_probabilities(probs)
        return probs

    def run(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        """Sample counts from a bound circuit."""
        probs = self.probabilities(circuit)
        return counts_from_probabilities(probs, shots, self.rng)

    def estimate_energy(
        self,
        circuit: QuantumCircuit,
        hamiltonian: PauliSum,
        shots_per_group: int = 4096,
    ) -> float:
        """Measurement-based energy estimate with QWC grouping.

        Each group gets its own basis-rotated execution. With a mitigator
        configured, counts are corrected before term evaluation (the
        paper's baseline always runs measurement error mitigation).
        """
        if circuit.num_qubits != hamiltonian.num_qubits:
            raise ValueError("circuit/Hamiltonian qubit mismatch")
        energy = 0.0
        for group in group_commuting_terms(hamiltonian):
            non_identity = [t for t in group if not t.pauli.is_identity]
            for term in group:
                if term.pauli.is_identity:
                    energy += term.coefficient
            if not non_identity:
                continue
            basis = measurement_bases(non_identity)
            measured = circuit.copy()
            measured.compose(basis_rotation_circuit(basis))
            counts = self.run(measured, shots_per_group)
            if self.mitigator is not None:
                quasi = self.mitigator.mitigate_counts(counts)
                for term in non_identity:
                    value = sum(
                        diagonal_value(term.pauli, bits) * p
                        for bits, p in quasi.items()
                    )
                    energy += term.coefficient * value
            else:
                total = sum(counts.values())
                for term in non_identity:
                    accum = sum(
                        diagonal_value(term.pauli, bits) * count
                        for bits, count in counts.items()
                    )
                    energy += term.coefficient * accum / total
        return energy
