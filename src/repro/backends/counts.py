"""The shot-level counts backend.

Runs real circuits through the vectorized noisy-execution engine: a
(circuit, noise model) pair lowers once into a channel-aware
:class:`~repro.compiler.NoisePlan` (static-gate fusion between channel
sites, adjacent unitaries absorbed into pre-stacked Kraus arrays, one
pre-compiled superoperator per channel site) and executes on one of two
routes sharing that IR:

* ``dm`` (default) — exact density-matrix evolution, bit-compatible with
  the historic per-instruction Kraus walk for fixed seeds;
* ``traj`` — batched quantum-trajectory unraveling
  (:class:`~repro.simulator.trajectory.TrajectorySimulator`): an
  ensemble of pure-state trajectories propagated with the leading-batch-
  axis kernels, with shots sampled across the per-trajectory outcome
  distributions.

Select the route with the ``REPRO_NOISY_ENGINE`` environment knob (or
the ``engine`` constructor argument); ``REPRO_TRAJECTORIES`` sizes the
trajectory ensemble.

Everything the backend compiles is content-hash cached per instance:
device lowerings (through the compiler's single
:func:`~repro.compiler.transpile_then_compile` entry point), noise
plans, and the per-group measurement-basis rotation circuits of
:meth:`CountsBackend.estimate_energy` — repeated ``probabilities`` /
``counts`` calls on the same circuit never re-lower, re-transpile, or
rebuild a gate matrix. Device-aware outcome distributions are read back
through the transpiler's final qubit permutation into logical order.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.compiler import (
    DeviceCompilation,
    NoisePlan,
    PlanCache,
    circuit_fingerprint,
    compile_noise_plan,
    compile_plan,
    noise_fingerprint,
    transpile_then_compile,
)
from repro.compiler.cache import coupling_fingerprint, fusion_enabled
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError, ReadoutMitigator
from repro.operators.grouping import group_commuting_terms, measurement_bases
from repro.operators.measurement_basis import basis_rotation_circuit, diagonal_value
from repro.operators.pauli_sum import PauliSum
from repro.simulator.density_matrix import DensityMatrixSimulator
from repro.simulator.sampling import (
    counts_from_probabilities,
    counts_from_trajectory_rows,
)
from repro.simulator.trajectory import TrajectorySimulator
from repro.utils.rng import SeedLike, ensure_rng

#: Default trajectory-ensemble size for the ``traj`` engine.
DEFAULT_TRAJECTORIES = 512

#: Per-instance cap on the content-hash artifact caches.
_INSTANCE_CACHE_CAPACITY = 256


def noisy_engine_default() -> str:
    """The engine the ``REPRO_NOISY_ENGINE`` environment knob selects."""
    value = os.environ.get("REPRO_NOISY_ENGINE", "").strip().lower()
    return value if value else "dm"


def default_trajectories() -> int:
    """Trajectory-ensemble size from ``REPRO_TRAJECTORIES`` (default 512)."""
    value = os.environ.get("REPRO_TRAJECTORIES", "").strip()
    if not value:
        return DEFAULT_TRAJECTORIES
    try:
        return max(1, int(value))
    except ValueError:
        return DEFAULT_TRAJECTORIES


def _instance_cache(name: str) -> PlanCache:
    """A per-backend content-keyed LRU for compiled artifacts.

    The shared plan cache already dedupes process-wide, but an
    optimization loop rebinding per step floods it with one-shot entries
    (see the note on :func:`~repro.compiler.api.transpile_then_compile`);
    holding this backend's own lowerings in a private fixed-capacity
    :class:`~repro.compiler.PlanCache` keeps its hot circuits immune to
    that churn (and stays thread-safe for fleet workers).
    """
    return PlanCache(capacity=_INSTANCE_CACHE_CAPACITY, name=name)


class CountsBackend:
    """Circuit execution returning measurement counts.

    With ``device`` set, circuits are lowered through
    :func:`repro.compiler.transpile_then_compile` (layout -> routing ->
    native basis) before simulation, and all counts / probabilities are
    reported in *logical* qubit order regardless of routing permutations.

    ``engine`` picks the noisy-execution route (``"dm"`` or ``"traj"``),
    defaulting to the ``REPRO_NOISY_ENGINE`` environment knob; the
    ``dm`` default consumes the backend RNG exactly like the historic
    path, so fixed-seed results stay bit-identical. ``trajectories``
    sizes the ``traj`` ensemble (default ``REPRO_TRAJECTORIES`` or 512).
    """

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        readout_error: Optional[ReadoutError] = None,
        mitigate_readout: bool = False,
        seed: SeedLike = None,
        device=None,
        layout_method: str = "chain",
        engine: Optional[str] = None,
        trajectories: Optional[int] = None,
    ):
        self.noise_model = noise_model
        self.readout_error = readout_error
        self.mitigator = (
            ReadoutMitigator(readout_error)
            if (mitigate_readout and readout_error is not None)
            else None
        )
        self.rng = ensure_rng(seed)
        self.device = device
        self.layout_method = layout_method
        if engine is not None and engine not in ("dm", "traj"):
            raise ValueError(f"unknown noisy engine {engine!r}")
        self._engine = engine
        self._trajectories = trajectories
        # Named so each LRU reports its own cache.counts.* metric family.
        self._lowerings = _instance_cache("counts.lowerings")
        self._noise_plans = _instance_cache("counts.noise_plans")
        self._group_plans = _instance_cache("counts.group_plans")
        self._measured_circuits = _instance_cache("counts.measured")

    # -- engine / cache plumbing ----------------------------------------------

    @property
    def engine(self) -> str:
        """The active noisy-execution route (``dm`` or ``traj``)."""
        engine = self._engine if self._engine is not None else noisy_engine_default()
        if engine not in ("dm", "traj"):
            raise ValueError(
                f"REPRO_NOISY_ENGINE={engine!r} is not one of 'dm', 'traj'"
            )
        return engine

    @property
    def trajectories(self) -> int:
        """Trajectory-ensemble size used by the ``traj`` engine."""
        if self._trajectories is not None:
            return max(1, int(self._trajectories))
        return default_trajectories()

    def _circuit_key(self, circuit: QuantumCircuit) -> str:
        """Content hash identifying a bound circuit on this backend."""
        extra: Tuple[object, ...] = ("fused" if fusion_enabled() else "raw",)
        if self.device is not None:
            coupling = getattr(self.device, "coupling_map", self.device)
            extra = (
                coupling_fingerprint(coupling),
                self.layout_method,
            ) + extra
        return circuit_fingerprint(circuit, extra=extra)

    def _lower(self, circuit: QuantumCircuit, key: str) -> DeviceCompilation:
        """Device lowering, content-cached on this backend instance."""
        return self._lowerings.get_or_build(
            key,
            lambda: transpile_then_compile(
                circuit, self.device, layout_method=self.layout_method
            ),
        )

    def _noise_plan(self, circuit: QuantumCircuit, key: str) -> NoisePlan:
        """Channel-aware noise plan, content-cached on this instance.

        The cache key folds in the noise model's content fingerprint, so
        swapping ``self.noise_model`` between calls never serves a plan
        compiled for the old model; a model without a fingerprint is
        lowered fresh on every call (matching
        :func:`~repro.compiler.compile_noise_plan`).
        """
        model_fingerprint = noise_fingerprint(self.noise_model)
        if model_fingerprint is None:
            return compile_noise_plan(circuit, self.noise_model)
        return self._noise_plans.get_or_build(
            f"{key}|{model_fingerprint}",
            lambda: compile_noise_plan(circuit, self.noise_model),
        )

    @staticmethod
    def _logical_probabilities(
        probs: np.ndarray, compiled: DeviceCompilation, num_logical: int
    ) -> np.ndarray:
        """Marginalize an executed distribution back into logical order.

        Each logical qubit ``v`` ends the (trimmed, routed) circuit at
        ``compiled.logical_positions[v]``; every other live qubit is
        traced out. Accepts a single distribution or a ``(B, 2**m)``
        batch of per-trajectory rows (leading axes are preserved).
        """
        num_physical = int(np.log2(probs.shape[-1]))
        positions = list(compiled.logical_positions[:num_logical])
        lead = probs.shape[:-1]
        offset = len(lead)
        tensor = probs.reshape(lead + (2,) * num_physical)
        tensor = np.moveaxis(
            tensor,
            [offset + p for p in positions],
            range(offset, offset + num_logical),
        )
        return tensor.reshape(lead + (2**num_logical, -1)).sum(axis=-1)

    # -- execution -------------------------------------------------------------

    def _execution_target(
        self, circuit: QuantumCircuit
    ) -> Tuple[QuantumCircuit, Optional[DeviceCompilation], str]:
        """Resolve (executable circuit, device compilation, content key)."""
        key = self._circuit_key(circuit)
        if self.device is None:
            return circuit, None, key
        compiled = self._lower(circuit, key)
        return compiled.circuit, compiled, key

    def _dm_probabilities(
        self,
        target: QuantumCircuit,
        compiled: Optional[DeviceCompilation],
        key: str,
    ) -> np.ndarray:
        simulator = DensityMatrixSimulator(target.num_qubits)
        if self.noise_model is None:
            if compiled is not None:
                # Noise-free: execute the plan that was already built —
                # no second lowering through the plain compile cache.
                rho = simulator.run_plan(compiled.plan)
            else:
                rho = simulator.run_plan(compile_plan(target))
        else:
            rho = simulator.run_noise_plan(self._noise_plan(target, key))
        return simulator.probabilities(rho)

    def _trajectory_rows(
        self,
        target: QuantumCircuit,
        compiled: Optional[DeviceCompilation],
        key: str,
        num_logical: int,
    ) -> np.ndarray:
        """Per-trajectory outcome rows ``(B, 2**n)`` in logical order."""
        simulator = TrajectorySimulator(target.num_qubits)
        if self.noise_model is None:
            plan = compile_noise_plan(target, NoiseModel.ideal())
        else:
            plan = self._noise_plan(target, key)
        # A channel-free plan has one deterministic trajectory: running
        # the ensemble would produce B identical rows.
        batch = 1 if plan.num_channels == 0 else self.trajectories
        rows = simulator.trajectory_probabilities(plan, batch, rng=self.rng)
        if compiled is not None:
            rows = self._logical_probabilities(rows, compiled, num_logical)
        if self.readout_error is not None:
            rows = rows @ self.readout_error.confusion_matrix().T
        return rows

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Noisy outcome distribution of a bound circuit (logical order).

        On the ``dm`` engine this is the exact density-matrix diagonal;
        on ``traj`` it is the trajectory-ensemble estimate (stochastic,
        consuming the backend RNG).
        """
        target, compiled, key = self._execution_target(circuit)
        if self.engine == "traj":
            return self._trajectory_rows(
                target, compiled, key, circuit.num_qubits
            ).mean(axis=0)
        probs = self._dm_probabilities(target, compiled, key)
        if compiled is not None:
            probs = self._logical_probabilities(
                probs, compiled, circuit.num_qubits
            )
        if self.readout_error is not None:
            probs = self.readout_error.apply_to_probabilities(probs)
        return probs

    def run(self, circuit: QuantumCircuit, shots: int) -> Dict[str, int]:
        """Sample counts from a bound circuit."""
        if shots < 1:
            raise ValueError("shots must be >= 1")
        if self.engine == "traj":
            target, compiled, key = self._execution_target(circuit)
            rows = self._trajectory_rows(
                target, compiled, key, circuit.num_qubits
            )
            return counts_from_trajectory_rows(rows, shots, self.rng)
        probs = self.probabilities(circuit)
        return counts_from_probabilities(probs, shots, self.rng)

    # -- energy estimation -----------------------------------------------------

    def _measurement_groups(self, hamiltonian: PauliSum) -> List[tuple]:
        """QWC measurement plan for a Hamiltonian, cached by content.

        Each entry is ``(identity_coefficient, non_identity_terms,
        rotation_circuit)``; the basis-rotation circuits are shared
        across every ``estimate_energy`` call on this backend.
        """
        key = "|".join(
            f"{term.pauli.label}:{term.coefficient!r}"
            for term in hamiltonian.terms
        )

        def build() -> List[tuple]:
            plan = []
            for group in group_commuting_terms(hamiltonian):
                identity = sum(
                    term.coefficient for term in group if term.pauli.is_identity
                )
                non_identity = tuple(
                    term for term in group if not term.pauli.is_identity
                )
                rotation = (
                    basis_rotation_circuit(measurement_bases(non_identity))
                    if non_identity
                    else None
                )
                plan.append((identity, non_identity, rotation))
            return plan

        return self._group_plans.get_or_build(key, build)

    def _measured_circuit(
        self, circuit: QuantumCircuit, key: str, rotation: QuantumCircuit
    ) -> QuantumCircuit:
        """The circuit with a group's basis rotation appended, cached."""
        def build() -> QuantumCircuit:
            measured = circuit.copy()
            measured.compose(rotation)
            return measured

        return self._measured_circuits.get_or_build(
            f"{key}|{rotation.name}", build
        )

    def estimate_energy(
        self,
        circuit: QuantumCircuit,
        hamiltonian: PauliSum,
        shots_per_group: int = 4096,
    ) -> float:
        """Measurement-based energy estimate with QWC grouping.

        Each group gets its own basis-rotated execution. With a mitigator
        configured, counts are corrected before term evaluation (the
        paper's baseline always runs measurement error mitigation).
        """
        if circuit.num_qubits != hamiltonian.num_qubits:
            raise ValueError("circuit/Hamiltonian qubit mismatch")
        source_key = self._circuit_key(circuit)
        energy = 0.0
        for identity, non_identity, rotation in self._measurement_groups(
            hamiltonian
        ):
            energy += identity
            if not non_identity:
                continue
            measured = self._measured_circuit(circuit, source_key, rotation)
            counts = self.run(measured, shots_per_group)
            if self.mitigator is not None:
                quasi = self.mitigator.mitigate_counts(counts)
                for term in non_identity:
                    value = sum(
                        diagonal_value(term.pauli, bits) * p
                        for bits, p in quasi.items()
                    )
                    energy += term.coefficient * value
            else:
                total = sum(counts.values())
                for term in non_identity:
                    accum = sum(
                        diagonal_value(term.pauli, bits) * count
                        for bits, count in counts.items()
                    )
                    energy += term.coefficient * accum / total
        return energy
