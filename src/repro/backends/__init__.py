"""Execution backends.

Three energy backends share the job-based protocol
(``new_job() -> job; job.energy(theta) -> float``):

* :class:`IdealBackend` — exact statevector energies (the paper's
  noise-free orange line);
* :class:`StaticNoiseBackend` — static noise only (the blue line);
* :class:`TransientBackend` — static noise plus trace-driven transients
  (the red line, and the substrate QISMET runs on). All circuits evaluated
  within one job share the same transient instance — exactly the property
  QISMET's reference-rerun mechanism relies on.

:class:`CountsBackend` is the shot-level backend (density-matrix noise,
readout error, optional measurement mitigation) used to validate the
energy-level approximations.
"""

from repro.backends.base import EnergyBackend, EnergyJob
from repro.backends.ideal import IdealBackend
from repro.backends.transient import StaticNoiseBackend, TransientBackend
from repro.backends.counts import CountsBackend

__all__ = [
    "EnergyBackend",
    "EnergyJob",
    "IdealBackend",
    "StaticNoiseBackend",
    "TransientBackend",
    "CountsBackend",
]
