"""Static-noise and transient-noise energy backends.

This implements the paper's simulation methodology (Section 6.2):

* the *static* component uses the global-depolarizing survival factor of
  the ansatz circuit under the device's calibration —
  ``E_static = lambda * E_ideal + (1 - lambda) * E_mixed`` — plus Gaussian
  shot noise sized by the Hamiltonian's coefficients and the shot count;
* the *transient* component is drawn from a :class:`TransientTrace` per
  job and applied "normalized to the magnitude of the VQA estimations":
  ``E_m = E_static + trace[job] * |E_ideal|``.

Every circuit evaluated within one job sees the same trace value, so a
rerun of the previous iteration's circuit measures the current job's
transient — the mechanism QISMET exploits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backends.base import EnergyBackend
from repro.noise.noise_model import NoiseModel
from repro.noise.transient.trace import TransientTrace
from repro.simulator.expectation import shot_noise_sigma
from repro.utils.rng import SeedLike, derive_rng, ensure_rng
from repro.vqa.objective import EnergyObjective


class StaticNoiseBackend(EnergyBackend):
    """Static noise only — the paper's (unrealistic) blue line."""

    supports_batch = True

    def __init__(
        self,
        objective: EnergyObjective,
        noise_model: Optional[NoiseModel] = None,
        shots: int = 4096,
        seed: SeedLike = None,
    ):
        super().__init__()
        self.objective = objective
        self.noise_model = noise_model if noise_model is not None else NoiseModel()
        self.shots = shots
        self.rng = ensure_rng(seed)

        singles, twos = objective.gate_counts()
        self.survival = self.noise_model.survival_factor_from_counts(singles, twos)
        self.mixed_energy = objective.mixed_state_energy()
        self.shot_sigma = shot_noise_sigma(objective.hamiltonian, shots)
        # Depolarization suppresses the signal *and* the estimator variance
        # stays shot-limited; keep sigma unscaled (conservative).

    def _static_mix(self, ideal: float) -> float:
        """Global-depolarizing mix of an ideal energy (no shot noise)."""
        return self.survival * ideal + (1.0 - self.survival) * self.mixed_energy

    def static_energy(self, theta: np.ndarray) -> float:
        return self._static_mix(self.objective.ideal_energy(theta))

    def _finish(self, theta: np.ndarray, ideal: float, job_index: int) -> float:
        """Noise model applied to a precomputed ideal energy."""
        return self._static_mix(ideal) + self.rng.normal(0.0, self.shot_sigma)

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        return self._finish(theta, self.objective.ideal_energy(theta), job_index)

    def _evaluate_batch(
        self, thetas: np.ndarray, job_indices: Sequence[int]
    ) -> np.ndarray:
        # The expensive part — the ideal energies — runs through the
        # batched simulator in one pass; the per-evaluation noise draws
        # then happen element by element in row order, consuming the RNG
        # stream exactly as serial evaluation would.
        ideals = self.objective.batch_energies(thetas)
        return np.array(
            [
                self._finish(theta, float(ideal), job_index)
                for theta, ideal, job_index in zip(thetas, ideals, job_indices)
            ],
            dtype=float,
        )


class TransientBackend(StaticNoiseBackend):
    """Static noise plus per-job transients — the realistic red line.

    Within one job, all circuits share the job's trace value: they execute
    back to back under the same noise environment. A circuit's *effective*
    exposure to that transient is state dependent (paper Section 3.2c:
    "effect of errors is state dependent"), modelled as a smooth random
    field over parameter space:

    ``exposure(theta) = 1 + s * sum_k a_k sin(theta_k + phi_k) / sqrt(m)``

    with fixed random ``(a_k, phi_k)`` per run and sensitivity ``s``
    (``state_sensitivity``). Smoothness is the key property:

    * the rerun of iteration ``i`` and the candidate ``i+1`` differ by one
      small optimizer step, so their exposures nearly coincide — QISMET's
      ``Tm`` is a faithful transient estimate;
    * a tuner's simultaneous-perturbation pair ``theta +- c*Delta`` sits
      ``2c`` apart in *every* coordinate, so during a spike the two
      evaluations see measurably different exposures — the mechanism by
      which transients corrupt measured gradients and derail tuning.
    """

    def __init__(
        self,
        objective: EnergyObjective,
        trace: TransientTrace,
        noise_model: Optional[NoiseModel] = None,
        shots: int = 4096,
        seed: SeedLike = None,
        transient_scale: Optional[float] = None,
        state_sensitivity: float = 0.1,
        field_frequency: float = 2.0,
        exposure_jitter: float = 0.02,
    ):
        super().__init__(objective, noise_model=noise_model, shots=shots, seed=seed)
        if state_sensitivity < 0:
            raise ValueError("state_sensitivity must be non-negative")
        if field_frequency <= 0:
            raise ValueError("field_frequency must be positive")
        if exposure_jitter < 0:
            raise ValueError("exposure_jitter must be non-negative")
        self.trace = trace
        # Transients are normalized to "the magnitude of the VQA
        # estimations" (paper Sec 6.2); by default that reference magnitude
        # is |E_ideal(theta)| per evaluation, but a fixed scale can be
        # supplied (e.g. the Hamiltonian's spectral half-width).
        self.transient_scale = transient_scale
        self.state_sensitivity = state_sensitivity
        self.field_frequency = field_frequency
        self.exposure_jitter = exposure_jitter
        # The field's frequency sets its decorrelation length in parameter
        # space: ~1/frequency radians. It must sit between the optimizer's
        # accepted-step size (so rerun/candidate exposures agree) and the
        # SPSA perturbation distance 2c (so +-c evaluations decorrelate).
        # The field is a *device* property — it describes how the transient
        # couples to circuit states — so it derives from the trace's seed,
        # not the backend's: schemes compared on the same trace experience
        # the same exposure landscape.
        m = objective.num_parameters
        field_rng = derive_rng(
            int(trace.metadata.get("seed", 0)), f"exposure-field:{trace.name}"
        )
        self._field_amp = field_rng.standard_normal(m)
        self._field_phase = field_rng.uniform(0.0, 2.0 * np.pi, m)
        self._field_freq = field_rng.uniform(
            0.5 * field_frequency, 1.5 * field_frequency, m
        )
        self._field_norm = np.sqrt(max(1, m) / 2.0)

    def transient_fraction(self, job_index: int) -> float:
        """The shared trace value governing a given job."""
        return self.trace[job_index]

    def exposure(self, theta: np.ndarray) -> float:
        """State-dependent transient exposure multiplier."""
        field = float(
            np.dot(
                self._field_amp,
                np.sin(self._field_freq * theta + self._field_phase),
            )
            / self._field_norm
        )
        jitter = (
            self.rng.normal(0.0, self.exposure_jitter)
            if self.exposure_jitter > 0
            else 0.0
        )
        return 1.0 + self.state_sensitivity * field + jitter

    # A transient cannot push an estimate arbitrarily far: at worst the
    # extra decoherence fully mixes the state, so the effective fractional
    # perturbation saturates.
    _MAX_FRACTION = 1.2

    def _finish(self, theta: np.ndarray, ideal: float, job_index: int) -> float:
        static = self._static_mix(ideal)
        reference = (
            self.transient_scale
            if self.transient_scale is not None
            else abs(ideal)
        )
        fraction = self.trace[job_index] * self.exposure(theta)
        fraction = float(np.clip(fraction, -self._MAX_FRACTION, self._MAX_FRACTION))
        return static + fraction * reference + self.rng.normal(0.0, self.shot_sigma)

    def _evaluate(self, theta: np.ndarray, job_index: int) -> float:
        return self._finish(theta, self.objective.ideal_energy(theta), job_index)
