"""Shared simulated time for the device fleet.

The fleet does not run on wall-clock time: transient traces, calibration
cycles and scheduling decisions all advance on a single integer *tick*
counter, one tick per completed (or deferred) job. That keeps every
time-dependent quantity — per-device transient observations, calibration
refreshes, deferral windows — a pure function of the tick, which is what
makes fleet scheduling reproducible and testable despite running on real
threads.
"""

from __future__ import annotations

import threading
from typing import Optional


class SimulatedClock:
    """A thread-safe monotonic tick counter shared by the whole fleet."""

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("start tick must be >= 0")
        self._now = int(start)
        self._cond = threading.Condition()

    def now(self) -> int:
        with self._cond:
            return self._now

    def advance(self, ticks: int = 1) -> int:
        """Advance time and wake anyone waiting on it; returns the new tick."""
        if ticks < 1:
            raise ValueError("ticks must be >= 1")
        with self._cond:
            self._now += int(ticks)
            self._cond.notify_all()
            return self._now

    def wait_beyond(self, tick: int, timeout: Optional[float] = None) -> bool:
        """Block until the clock has moved past ``tick`` (True) or timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._now > tick, timeout=timeout)

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self.now()})"
