"""``repro.fleet`` — transient-aware multi-device job scheduling.

The paper schedules *iterations* within one VQE run around a single
machine's transient windows; this package applies the same idea one level
up: treat the seven fake IBMQ machines as a **fleet**, monitor each one's
transient state live (Kalman + CFAR over its noise series), and schedule
whole jobs — accepted, deferred, or re-routed — across the fleet.

Layers (bottom-up):

* :mod:`~repro.fleet.clock` — shared simulated time (ticks, not seconds);
* :mod:`~repro.fleet.registry` — :class:`DeviceFleet`: live machines with
  advancing calibration snapshots, monitor traces, injected windows;
* :mod:`~repro.fleet.store` — :class:`JobStore`: persistent SQLite job
  table keyed by ``RunSpec`` content hash (resubmission dedupes);
* :mod:`~repro.fleet.scheduler` — :class:`TransientAwareScheduler`:
  defer-or-route decisions from per-device transient verdicts;
* :mod:`~repro.fleet.health` — :class:`DeviceHealth`: quarantine after
  consecutive failures/transients, probe-based re-admission;
* :mod:`~repro.fleet.workers` — one worker thread per device;
* :mod:`~repro.fleet.service` — :class:`FleetService`: submit / drain /
  collect, plus telemetry;
* :mod:`~repro.fleet.executor` — :class:`FleetExecutor`: the
  ``REPRO_EXECUTOR=fleet`` entry point for the plan runtime.

CLI::

    python -m repro.fleet submit --apps App1 App2 --schemes baseline qismet \
        --iterations 100 --db fleet.db
    python -m repro.fleet drain --resume --db fleet.db
    python -m repro.fleet status --db fleet.db
    python -m repro.fleet stats  --db fleet.db
    python -m repro.fleet devices
"""

from repro.fleet.clock import SimulatedClock
from repro.fleet.executor import (
    FLEET_DB_ENV,
    FleetExecutor,
    fleet_executor_from_env,
)
from repro.fleet.health import DeviceHealth, HealthConfig
from repro.fleet.registry import DeviceFleet, FleetDevice, InjectedWindow
from repro.fleet.scheduler import (
    SchedulerConfig,
    TransientAwareScheduler,
    TransientVerdict,
)
from repro.fleet.service import FleetError, FleetService
from repro.fleet.store import JobRecord, JobStore
from repro.fleet.telemetry import FleetTelemetry

__all__ = [
    "FLEET_DB_ENV",
    "DeviceFleet",
    "DeviceHealth",
    "FleetDevice",
    "FleetError",
    "FleetExecutor",
    "FleetService",
    "FleetTelemetry",
    "HealthConfig",
    "InjectedWindow",
    "JobRecord",
    "JobStore",
    "SchedulerConfig",
    "SimulatedClock",
    "TransientAwareScheduler",
    "TransientVerdict",
    "fleet_executor_from_env",
]
