"""The fleet as a drop-in :mod:`repro.runtime` executor.

:class:`FleetExecutor` satisfies the same contract as
:class:`~repro.runtime.executors.SerialExecutor` — specs in, results out,
in input order, bit-identical payloads — while executing across the
device fleet. Select it for any existing entry point with::

    REPRO_EXECUTOR=fleet            # optionally REPRO_FLEET_DB=path.db
    python examples/experiment_sweep.py

or construct it directly for programmatic access to the scheduler
telemetry::

    with FleetExecutor(db_path="fleet.db") as executor:
        outcome = executor.run_plan(plan)
        print(executor.telemetry.snapshot())
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Union

from repro.fleet.scheduler import SchedulerConfig
from repro.fleet.service import FleetService
from repro.runtime.executors import BaseExecutor
from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec

#: Environment knob: path of the persistent fleet job store.
FLEET_DB_ENV = "REPRO_FLEET_DB"
#: Environment knob: comma-separated machine subset for the fleet.
FLEET_MACHINES_ENV = "REPRO_FLEET_MACHINES"


class FleetExecutor(BaseExecutor):
    """Executor facade over a (lazily started) :class:`FleetService`.

    ``hits``/``misses`` mirror :class:`~repro.runtime.executors.
    CachedExecutor`: a hit is a spec served from the job store without
    re-execution.
    """

    def __init__(
        self,
        machines: Optional[Sequence[str]] = None,
        db_path: Optional[Union[str, os.PathLike]] = None,
        seed: int = 2023,
        config: Optional[SchedulerConfig] = None,
        service: Optional[FleetService] = None,
        timeout: Optional[float] = None,
    ):
        self.timeout = timeout
        self.service = service or FleetService(
            machines=machines,
            db_path=str(db_path) if db_path else None,
            seed=seed,
            config=config,
        )
        self.hits = 0
        self.misses = 0

    @property
    def telemetry(self):
        return self.service.telemetry

    @property
    def fleet(self):
        return self.service.fleet

    @property
    def store(self):
        return self.service.store

    @property
    def results(self):
        """The embedded experiment store holding this fleet's payloads."""
        return self.service.store.results

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        results = self.service.run_specs(specs, timeout=self.timeout)
        cached = sum(1 for result in results if result.from_cache)
        self.hits += cached
        self.misses += len(results) - cached
        return results

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def fleet_executor_from_env(**overrides) -> FleetExecutor:
    """Build a :class:`FleetExecutor` from ``REPRO_FLEET_*`` knobs.

    ``REPRO_FLEET_DB`` selects the persistent job store (default:
    in-memory, per-process); ``REPRO_FLEET_MACHINES`` restricts the fleet
    to a comma-separated machine subset. Keyword overrides win over the
    environment.
    """
    db = os.environ.get(FLEET_DB_ENV, "").strip()
    machines_env = os.environ.get(FLEET_MACHINES_ENV, "").strip()
    machines = (
        [name.strip() for name in machines_env.split(",") if name.strip()]
        if machines_env
        else None
    )
    kwargs = {"db_path": db or None, "machines": machines}
    kwargs.update(overrides)
    return FleetExecutor(**kwargs)
