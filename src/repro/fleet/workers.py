"""Per-device worker threads.

One thread per fleet device, each draining its own FIFO queue. Workers are
deliberately thin: all scheduling, persistence and telemetry logic lives
in :class:`~repro.fleet.service.FleetService` (passed in as the
``execute`` callback), so the threading surface stays small and the
interesting logic stays single-threaded-testable.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, Optional

from repro.fleet.registry import DeviceFleet, FleetDevice

#: Sentinel that tells a worker to exit its loop.
_STOP = object()


class DeviceWorker(threading.Thread):
    """Drains one device's job queue through the service's execute hook."""

    def __init__(
        self,
        device: FleetDevice,
        execute: Callable[[FleetDevice, Any], None],
    ):
        super().__init__(name=f"fleet-{device.name}", daemon=True)
        self.device = device
        self.execute = execute
        self.jobs: "queue.Queue" = queue.Queue()

    def submit(self, job: Any) -> None:
        self.jobs.put(job)

    def stop(self) -> None:
        self.jobs.put(_STOP)

    def run(self) -> None:
        while True:
            job = self.jobs.get()
            if job is _STOP:
                break
            self.execute(self.device, job)


class WorkerPool:
    """One :class:`DeviceWorker` per fleet device."""

    def __init__(
        self,
        fleet: DeviceFleet,
        execute: Callable[[FleetDevice, Any], None],
    ):
        self.workers: Dict[str, DeviceWorker] = {
            device.name: DeviceWorker(device, execute) for device in fleet
        }
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for worker in self.workers.values():
            worker.start()

    def submit(self, device_name: str, job: Any) -> None:
        if not self._started:
            raise RuntimeError("worker pool not started")
        self.workers[device_name].submit(job)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        if not self._started:
            return
        for worker in self.workers.values():
            worker.stop()
        for worker in self.workers.values():
            worker.join(timeout=timeout)
        self._started = False
