"""Persistent job store (stdlib SQLite) keyed by ``RunSpec`` content hash.

Jobs move through ``queued -> running -> done | failed``; a failed job is
re-queued on resubmission, a done job is a **dedupe hit** — resubmitting
the same spec returns the stored result without re-executing anything
(the spec's seed-determinism guarantees the stored payload is exactly
what a fresh run would produce).

The job table owns *lifecycle only*: result payloads live in an
embedded :class:`~repro.store.ExperimentStore` sharing this store's
SQLite connection (exposed as :attr:`JobStore.results`), so fleet
results land in the same content-addressed lakehouse every other cache
uses — queryable, deduped, and exportable with ``python -m repro.store``
pointed at the fleet db. Databases written before the store existed
keep working: a legacy inline ``jobs.result`` payload is read as a
fallback and backfilled into the store on first access. All timestamps
are fleet-clock ticks, keeping the store's contents reproducible
run-over-run.

Crash safety: every transition is journaled (WAL-style, via
:meth:`~repro.store.ExperimentStore.journal_append` into the shared
database), ``mark_done`` persists the result payload *before* flipping
the row's status (so a crash between the two leaves a re-runnable
``running`` row whose re-execution dedupes against the stored payload),
and ``mark_done``/``mark_failed`` are idempotent so a resumed drain and
a straggling worker cannot corrupt each other's state. Named fault
sites (``jobstore.enqueue``, ``jobstore.mark_running``,
``jobstore.mark_done``, ``jobstore.mark_done.commit``) let the chaos
suite drive exactly these windows.

One connection serves all worker threads, guarded by a lock
(``check_same_thread=False``); SQLite serializes writes anyway, and the
fleet's write rate is one row per job transition.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.faults.inject import INJECTOR
from repro.runtime.results import RunResult
from repro.runtime.spec import RunSpec
from repro.store.store import ExperimentStore

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

STATUSES = (QUEUED, RUNNING, DONE, FAILED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    run_id      TEXT PRIMARY KEY,
    spec        TEXT NOT NULL,
    status      TEXT NOT NULL,
    device      TEXT,
    defers      INTEGER NOT NULL DEFAULT 0,
    attempts    INTEGER NOT NULL DEFAULT 0,
    error       TEXT,
    result      TEXT,
    submitted_tick INTEGER NOT NULL DEFAULT 0,
    started_tick   INTEGER,
    finished_tick  INTEGER
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status);
CREATE TABLE IF NOT EXISTS telemetry (
    device      TEXT PRIMARY KEY,
    scheduled   INTEGER NOT NULL DEFAULT 0,
    completed   INTEGER NOT NULL DEFAULT 0,
    failed      INTEGER NOT NULL DEFAULT 0,
    deferred    INTEGER NOT NULL DEFAULT 0,
    cache_hits  INTEGER NOT NULL DEFAULT 0,
    retries     INTEGER NOT NULL DEFAULT 0,
    quarantines INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Columns added after the original schema shipped; ``CREATE TABLE IF
#: NOT EXISTS`` cannot retrofit them, so existing databases get an
#: additive ``ALTER TABLE`` on open.
_COLUMN_MIGRATIONS = (
    ("jobs", "attempts", "INTEGER NOT NULL DEFAULT 0"),
    ("telemetry", "retries", "INTEGER NOT NULL DEFAULT 0"),
    ("telemetry", "quarantines", "INTEGER NOT NULL DEFAULT 0"),
)


@dataclass
class JobRecord:
    """One row of the job table, spec-decoded."""

    run_id: str
    spec: RunSpec
    status: str
    device: Optional[str] = None
    defers: int = 0
    attempts: int = 0
    error: Optional[str] = None
    submitted_tick: int = 0
    started_tick: Optional[int] = None
    finished_tick: Optional[int] = None

    @property
    def is_done(self) -> bool:
        return self.status == DONE

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "device": self.device,
            "defers": self.defers,
            "attempts": self.attempts,
            "error": self.error,
            "submitted_tick": self.submitted_tick,
            "started_tick": self.started_tick,
            "finished_tick": self.finished_tick,
        }


class JobStore:
    """SQLite-backed job table + telemetry rollup.

    ``path=":memory:"`` gives an ephemeral per-service store; a file path
    makes jobs (and their results) survive across processes, which is what
    lets a resubmitted plan dedupe against last week's run.
    """

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._migrate_columns_locked()
            self._conn.commit()
        # Result payloads live in the experiment lakehouse, embedded in
        # the same database file (shared connection + re-entrant lock).
        self.results = ExperimentStore(
            self.path, conn=self._conn, lock=self._lock
        )

    def _migrate_columns_locked(self) -> None:
        for table, column, decl in _COLUMN_MIGRATIONS:
            present = {
                row["name"]
                for row in self._conn.execute(f"PRAGMA table_info({table})")
            }
            if column not in present:
                self._conn.execute(
                    f"ALTER TABLE {table} ADD COLUMN {column} {decl}"
                )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- job transitions ----------------------------------------------------

    def enqueue(self, spec: RunSpec, tick: int = 0) -> JobRecord:
        """Submit a spec; returns the (possibly pre-existing) record.

        * unknown spec — inserted as ``queued``;
        * ``done`` with an intact payload — returned as-is (dedupe hit);
        * ``done`` whose payload is missing or corrupt — **self-healed**:
          re-queued so the deterministic workload regenerates the bytes;
        * ``failed`` — re-queued with the error cleared;
        * ``queued``/``running`` — returned as-is (attach to in-flight job).
        """
        INJECTOR.fire("jobstore.enqueue", run_id=spec.run_id)
        with self._lock:
            existing = self._fetch_locked(spec.run_id)
            if existing is None:
                self._conn.execute(
                    "INSERT INTO jobs (run_id, spec, status, submitted_tick)"
                    " VALUES (?, ?, ?, ?)",
                    (spec.run_id, json.dumps(spec.to_dict()), QUEUED, tick),
                )
                self.results.journal_append(
                    "enqueue", spec.run_id, tick=tick
                )
                self._conn.commit()
                return JobRecord(spec.run_id, spec, QUEUED, submitted_tick=tick)
            if existing.status == DONE and not self._payload_available_locked(
                spec.run_id
            ):
                self._requeue_locked(
                    spec.run_id, tick, event="heal", attempts=existing.attempts
                )
                return self._fetch_locked(spec.run_id)
            if existing.status == FAILED:
                self._requeue_locked(
                    spec.run_id, tick, event="requeue", attempts=existing.attempts
                )
                return self._fetch_locked(spec.run_id)
            return existing

    def _payload_available_locked(self, run_id: str) -> bool:
        """Whether a ``done`` job's payload can actually be served.

        Checks the embedded store (which drops hash-mismatched blobs as
        misses) and falls back to the legacy inline column; a ``done``
        row failing both is unservable and should self-heal.
        """
        if self.results.get(run_id) is not None:
            return True
        row = self._conn.execute(
            "SELECT result FROM jobs WHERE run_id=?", (run_id,)
        ).fetchone()
        return row is not None and row["result"] is not None

    def _requeue_locked(
        self, run_id: str, tick: int, event: str, attempts: int
    ) -> None:
        self._conn.execute(
            "UPDATE jobs SET status=?, error=NULL, device=NULL,"
            " defers=0, started_tick=NULL, finished_tick=NULL,"
            " submitted_tick=? WHERE run_id=?",
            (QUEUED, tick, run_id),
        )
        self.results.journal_append(
            event, run_id, attempt=attempts, tick=tick
        )
        self._conn.commit()

    def mark_running(self, run_id: str, device: str, tick: int) -> None:
        INJECTOR.fire("jobstore.mark_running", run_id=run_id)
        self._transition(
            run_id,
            RUNNING,
            allowed=(QUEUED, RUNNING),
            extra="device=?, started_tick=?",
            params=(device, tick),
            journal=("running", device, tick),
        )

    def mark_done(self, run_id: str, result: RunResult, tick: int) -> None:
        """Persist a result and flip the row to ``done`` — idempotently.

        The payload is appended to the experiment store *first*, the
        status transition commits second: a crash between the two leaves
        a ``running`` row whose resumed re-execution dedupes against the
        already-stored payload, so the final bytes are identical either
        way. Calling this on an already-``done`` row is a no-op, which is
        what makes a resumed drain safe against straggling workers.
        """
        INJECTOR.fire("jobstore.mark_done", run_id=run_id)
        with self._lock:
            row = self._conn.execute(
                "SELECT status, device FROM jobs WHERE run_id=?", (run_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown job {run_id!r}")
            if row["status"] == DONE:
                return
            device = row["device"]
            self.results.append(result, device=device, source="fleet")
            # Crash window the chaos suite drives: payload persisted,
            # status not yet committed.
            INJECTOR.fire("jobstore.mark_done.commit", run_id=run_id)
            self._transition(
                run_id,
                DONE,
                allowed=(RUNNING, QUEUED, FAILED),
                extra="result=NULL, error=NULL, finished_tick=?",
                params=(tick,),
                journal=("done", device, tick),
            )

    def mark_failed(self, run_id: str, error: str, tick: int) -> None:
        """Flip a job to ``failed`` (idempotent on already-failed rows)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT status, device FROM jobs WHERE run_id=?", (run_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown job {run_id!r}")
            if row["status"] in (DONE, FAILED):
                return
            self._transition(
                run_id,
                FAILED,
                allowed=(RUNNING, QUEUED),
                extra="error=?, finished_tick=?",
                params=(str(error)[:2000], tick),
                journal=("failed", row["device"], tick, str(error)[:200]),
            )

    def record_retry(self, run_id: str, detail: str, tick: int) -> int:
        """Retry lifecycle: put a running job back in the queue.

        Bumps ``attempts``, clears the device claim, and journals the
        retry; returns the new attempt count. The job re-enters the
        dispatch loop and backs off on the fleet clock (the service owns
        the backoff — the store only records the lifecycle).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT status, attempts, device FROM jobs WHERE run_id=?",
                (run_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown job {run_id!r}")
            if row["status"] not in (RUNNING, QUEUED):
                raise ValueError(
                    f"job {run_id}: cannot retry from {row['status']}"
                )
            attempts = row["attempts"] + 1
            self._conn.execute(
                "UPDATE jobs SET status=?, attempts=?, device=NULL,"
                " started_tick=NULL, error=? WHERE run_id=?",
                (QUEUED, attempts, str(detail)[:2000], run_id),
            )
            self.results.journal_append(
                "retry",
                run_id,
                device=row["device"],
                attempt=attempts,
                detail=str(detail)[:200],
                tick=tick,
            )
            self._conn.commit()
            return attempts

    def record_defer(self, run_id: str, count: int = 1) -> None:
        """Count ``count`` deferrals against a job (job stays queued).

        Per-device/tick attribution lives in the telemetry layer; the
        store keeps only the per-job total so ``status`` output and the
        in-memory ``FleetJob.defers`` budget agree.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET defers = defers + ? WHERE run_id=?",
                (count, run_id),
            )
            self._conn.commit()

    def _transition(
        self, run_id: str, status: str, allowed, extra: str, params,
        journal=None,
    ) -> None:
        with self._lock:
            row = self._conn.execute(
                "SELECT status FROM jobs WHERE run_id=?", (run_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown job {run_id!r}")
            if row["status"] not in allowed:
                raise ValueError(
                    f"job {run_id}: cannot move {row['status']} -> {status}"
                )
            self._conn.execute(
                f"UPDATE jobs SET status=?, {extra} WHERE run_id=?",
                (status, *params, run_id),
            )
            if journal is not None:
                event, device, tick = journal[0], journal[1], journal[2]
                detail = journal[3] if len(journal) > 3 else ""
                self.results.journal_append(
                    event, run_id, device=device, detail=detail, tick=tick
                )
            self._conn.commit()

    def requeue_running(self) -> int:
        """Crash recovery: put any ``running`` jobs back in the queue."""
        with self._lock:
            stranded = [
                row["run_id"]
                for row in self._conn.execute(
                    "SELECT run_id FROM jobs WHERE status=?"
                    " ORDER BY run_id",
                    (RUNNING,),
                )
            ]
            if not stranded:
                return 0
            self._conn.execute(
                "UPDATE jobs SET status=?, device=NULL, started_tick=NULL"
                " WHERE status=?",
                (QUEUED, RUNNING),
            )
            for run_id in stranded:
                self.results.journal_append("requeue", run_id)
            self._conn.commit()
            return len(stranded)

    # -- queries ------------------------------------------------------------

    def _fetch_locked(self, run_id: str) -> Optional[JobRecord]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE run_id=?", (run_id,)
        ).fetchone()
        return _record_from_row(row) if row is not None else None

    def fetch(self, run_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._fetch_locked(run_id)

    def result(self, run_id: str) -> Optional[RunResult]:
        """The stored ``RunResult`` of a done job (else ``None``).

        Payloads come from the embedded experiment store; a pre-store
        database's inline ``jobs.result`` JSON is honored as a fallback
        and backfilled so the next read hits the store.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT result, device FROM jobs WHERE run_id=? AND status=?",
                (run_id, DONE),
            ).fetchone()
            if row is None:
                return None
            stored = self.results.get(run_id)
            if stored is not None:
                stored.from_cache = False
                return stored
            if row["result"] is None:
                return None
            legacy = RunResult.from_dict(json.loads(row["result"]))
            self.results.append(legacy, device=row["device"], source="fleet")
            self._conn.execute(
                "UPDATE jobs SET result=NULL WHERE run_id=?", (run_id,)
            )
            self._conn.commit()
            return legacy

    def jobs(self, status: Optional[str] = None) -> List[JobRecord]:
        if status is not None and status not in STATUSES:
            raise ValueError(f"unknown status {status!r}; known: {STATUSES}")
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY submitted_tick, run_id"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status=?"
                    " ORDER BY submitted_tick, run_id",
                    (status,),
                ).fetchall()
        return [_record_from_row(row) for row in rows]

    def run_ids(self, status: Optional[str] = None) -> List[str]:
        """Run ids (optionally filtered by status), without spec decoding."""
        if status is not None and status not in STATUSES:
            raise ValueError(f"unknown status {status!r}; known: {STATUSES}")
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT run_id FROM jobs ORDER BY submitted_tick, run_id"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT run_id FROM jobs WHERE status=?"
                    " ORDER BY submitted_tick, run_id",
                    (status,),
                ).fetchall()
        return [row["run_id"] for row in rows]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in STATUSES}
        counts.update({row["status"]: row["n"] for row in rows})
        return counts

    # -- telemetry rollup ---------------------------------------------------

    def accumulate_telemetry(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`FleetTelemetry.snapshot` into the persistent
        rollup (counters add across service lifetimes)."""
        with self._lock:
            for device, counters in snapshot.get("devices", {}).items():
                self._conn.execute(
                    "INSERT INTO telemetry"
                    " (device, scheduled, completed, failed, deferred,"
                    "  cache_hits, retries, quarantines)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT(device) DO UPDATE SET"
                    "  scheduled = scheduled + excluded.scheduled,"
                    "  completed = completed + excluded.completed,"
                    "  failed = failed + excluded.failed,"
                    "  deferred = deferred + excluded.deferred,"
                    "  cache_hits = cache_hits + excluded.cache_hits,"
                    "  retries = retries + excluded.retries,"
                    "  quarantines = quarantines + excluded.quarantines",
                    (
                        device,
                        counters.get("scheduled", 0),
                        counters.get("completed", 0),
                        counters.get("failed", 0),
                        counters.get("deferred", 0),
                        counters.get("cache_hits", 0),
                        counters.get("retries", 0),
                        counters.get("quarantines", 0),
                    ),
                )
            ticks = int(self._meta_locked("ticks", "0"))
            span = snapshot.get("ticks_elapsed", 0)
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('ticks', ?)"
                " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (str(ticks + int(span)),),
            )
            self._conn.commit()

    def telemetry(self) -> Dict[str, Any]:
        """The accumulated per-device rollup (plus total ticks)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM telemetry ORDER BY device"
            ).fetchall()
            ticks = int(self._meta_locked("ticks", "0"))
        return {
            "devices": {
                row["device"]: {
                    "scheduled": row["scheduled"],
                    "completed": row["completed"],
                    "failed": row["failed"],
                    "deferred": row["deferred"],
                    "cache_hits": row["cache_hits"],
                    "retries": row["retries"],
                    "quarantines": row["quarantines"],
                }
                for row in rows
            },
            "ticks": ticks,
        }

    def _meta_locked(self, key: str, default: str) -> str:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        ).fetchone()
        return row["value"] if row is not None else default


def _record_from_row(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        run_id=row["run_id"],
        spec=RunSpec.from_dict(json.loads(row["spec"])),
        status=row["status"],
        device=row["device"],
        defers=row["defers"],
        attempts=row["attempts"],
        error=row["error"],
        submitted_tick=row["submitted_tick"],
        started_tick=row["started_tick"],
        finished_tick=row["finished_tick"],
    )
