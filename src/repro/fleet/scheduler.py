"""Transient-aware job routing (the fleet-level QISMET analogue).

For each device the scheduler maintains a transient verdict built from
the device's monitored noise series, reusing the repo's two estimation
tools:

* a **CFAR detector** (:func:`repro.filtering.cfar.cfar_detect`) over the
  recent monitor window — flags the current tick when it spikes above the
  local noise floor (a transient is *in progress*);
* a **1-D Kalman filter** (:class:`repro.filtering.kalman.KalmanFilter1D`)
  over the same window — its one-step prediction flags ticks whose
  *expected* noise magnitude exceeds an absolute level (a transient
  window is *predicted*), which also catches the window edges where CFAR
  has no training cells yet.

Routing policy (paper Section 5 transplanted to the fleet):

1. rank devices by ``(queue depth, affinity, calibration quality, name)``
   — load balance first, prefer the machine the spec's application was
   profiled on, break remaining ties on the *current* calibration
   snapshot's two-qubit error (so calibration drift genuinely moves
   routing);
2. walk the ranking and place the job on the first device **not** inside
   a transient window; every better-ranked device skipped this way is
   recorded as a deferral against that device (QISMET-style "wait out the
   transient" — the job's work is deferred away from the machine);
3. if *every* device is inside a window the job is deferred fleet-wide:
   the caller advances the simulated clock and retries, up to
   ``defer_budget`` attempts, after which the job is force-placed on the
   least-loaded device (the paper's skip-budget escape hatch, which keeps
   a globally turbulent fleet from starving).

When constructed with a :class:`~repro.fleet.health.DeviceHealth`
tracker the scheduler additionally routes around *quarantined* devices
(too many consecutive failures or transient verdicts); a quarantined
device whose window elapsed is probed with the scheduler's own transient
check and re-admitted when clean. Forced placements ignore quarantine so
a fully-quarantined fleet still makes progress.

Verdicts are pure functions of ``(device, tick)``, so routing is
reproducible given the fleet seed and a job arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.filtering.cfar import cfar_detect
from repro.filtering.kalman import KalmanFilter1D
from repro.fleet.health import DeviceHealth
from repro.fleet.registry import DeviceFleet, FleetDevice
from repro.runtime.spec import RunSpec, resolve_app


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs for transient detection and deferral."""

    #: Monitor-window length fed to CFAR/Kalman per verdict.
    window: int = 32
    #: CFAR shape (per side) and alarm factor over the local noise floor.
    cfar_train_cells: int = 8
    cfar_guard_cells: int = 2
    cfar_alarm_factor: float = 4.0
    #: Kalman filter constants for the predicted-magnitude check.
    kalman_transition: float = 1.0
    kalman_measurement_variance: float = 0.05
    kalman_process_variance: float = 1e-3
    #: Absolute predicted-|transient| level above which a device defers.
    #: Quiet-baseline magnitudes sit near 0.01; spikes at 0.45-0.70
    #: (see repro.noise.transient.trace_generator.MACHINE_PROFILES).
    transient_level: float = 0.15
    #: Fleet-wide deferrals allowed per job before force placement.
    defer_budget: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.defer_budget < 0:
            raise ValueError("defer_budget must be >= 0")
        if self.transient_level <= 0:
            raise ValueError("transient_level must be positive")


@dataclass(frozen=True)
class TransientVerdict:
    """Why a device is (or is not) considered inside a transient window."""

    device: str
    tick: int
    observed: float
    predicted: float
    cfar_flag: bool

    @property
    def flagged(self) -> bool:
        return self.cfar_flag or self.predicted_flag

    @property
    def predicted_flag(self) -> bool:
        return self.predicted > 0.0


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one job at one tick."""

    device: Optional[FleetDevice]
    deferred_from: Tuple[TransientVerdict, ...] = ()
    forced: bool = False

    @property
    def placed(self) -> bool:
        return self.device is not None


class TransientAwareScheduler:
    """Routes jobs across a :class:`DeviceFleet` by live transient state."""

    def __init__(
        self,
        fleet: DeviceFleet,
        config: Optional[SchedulerConfig] = None,
        health: Optional[DeviceHealth] = None,
    ):
        self.fleet = fleet
        self.config = config or SchedulerConfig()
        #: Optional quarantine tracker (None = no health-based routing).
        self.health = health

    # -- transient detection -------------------------------------------------

    def verdict(self, device: FleetDevice, tick: int) -> TransientVerdict:
        """Transient verdict for ``device`` at ``tick`` (pure function)."""
        config = self.config
        window = device.observed_window(tick, config.window)
        cfar_flag = False
        if window.size > 1:
            mask = cfar_detect(
                window,
                train_cells=config.cfar_train_cells,
                guard_cells=config.cfar_guard_cells,
                alarm_factor=config.cfar_alarm_factor,
            )
            cfar_flag = bool(mask[-1])
        kalman = KalmanFilter1D(
            transition=config.kalman_transition,
            measurement_variance=config.kalman_measurement_variance,
            process_variance=config.kalman_process_variance,
        )
        estimate = float(kalman.filter_series(window)[-1])
        predicted = config.kalman_transition * estimate
        return TransientVerdict(
            device=device.name,
            tick=tick,
            observed=float(window[-1]),
            predicted=(
                predicted if predicted > config.transient_level else 0.0
            ),
            cfar_flag=cfar_flag,
        )

    def in_transient_window(self, device: FleetDevice, tick: int) -> bool:
        return self.verdict(device, tick).flagged

    # -- routing -------------------------------------------------------------

    def _ranked(self, spec: RunSpec, tick: int) -> List[FleetDevice]:
        affinity = resolve_app(spec.app).machine.lower()

        def key(device: FleetDevice):
            quality = (
                device.model_at(tick).calibration.mean_two_qubit_error()
            )
            return (
                device.depth,
                0 if device.name == affinity else 1,
                round(float(quality), 9),
                device.name,
            )

        return sorted(self.fleet, key=key)

    def route(
        self,
        spec: RunSpec,
        tick: int,
        exclude: Sequence[str] = (),
        force: bool = False,
    ) -> RoutingDecision:
        """Choose a device for ``spec`` at ``tick``.

        ``force=True`` skips the transient check (budget exhausted) and
        places on the best-ranked device outright — ignoring quarantine,
        so a fully-quarantined fleet cannot starve a job. ``exclude``
        removes devices from consideration (e.g. the device a worker just
        deferred the job away from).
        """
        excluded = {name.lower() for name in exclude}
        candidates = [
            device
            for device in self._ranked(spec, tick)
            if device.name not in excluded
        ]
        if not candidates:
            candidates = self._ranked(spec, tick)  # never dead-end on exclude
        if force:
            return RoutingDecision(device=candidates[0], forced=True)
        skipped: List[TransientVerdict] = []
        for device in candidates:
            if self._quarantined(device, tick):
                continue
            verdict = self.verdict(device, tick)
            if verdict.flagged:
                skipped.append(verdict)
                continue
            return RoutingDecision(
                device=device, deferred_from=tuple(skipped)
            )
        return RoutingDecision(device=None, deferred_from=tuple(skipped))

    def _quarantined(self, device: FleetDevice, tick: int) -> bool:
        """Health check: skip quarantined devices, probing expired windows.

        The probe is the scheduler's own transient verdict at the current
        tick — a quarantined device whose window elapsed re-admits only
        if its monitored noise looks clean right now.
        """
        if self.health is None:
            return False
        return self.health.blocked(
            device.name,
            tick,
            probe=lambda name: self.in_transient_window(device, tick),
        )
