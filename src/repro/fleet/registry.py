"""The device fleet: live models of the paper's IBMQ machines.

A :class:`DeviceFleet` instantiates the :mod:`repro.devices.ibmq_fake`
machines and gives each one a *life over time* on the fleet's shared
:class:`~repro.fleet.clock.SimulatedClock`:

* a **monitor trace** — the machine's transient-noise series, generated
  from its per-machine :class:`~repro.noise.transient.trace_generator.
  TransientProfile` and indexed by the fleet tick. This is the signal the
  scheduler's Kalman/CFAR estimators consume, the fleet-level analogue of
  the paper's per-iteration transient estimates;
* **calibration snapshots** that refresh every ``recalibration_period``
  ticks (the paper's once-a-day calibration cycles), so routing decisions
  see calibration drift, not a frozen day-zero snapshot;
* a **queue depth** counter the scheduler load-balances on.

Transient windows can also be *injected* (:meth:`DeviceFleet.
inject_transient`) to script fleet behaviour in tests and demos — e.g.
"Toronto is turbulent for the first 50 ticks".

Everything observable is a pure function of ``(machine, tick)`` given the
fleet seed, so scheduling behaviour is reproducible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.devices.device import DeviceModel
from repro.devices.ibmq_fake import available_machines, get_device
from repro.faults.inject import InjectedFault, INJECTOR
from repro.fleet.clock import SimulatedClock
from repro.noise.transient.trace import TransientTrace
from repro.noise.transient.trace_generator import machine_trace
from repro.utils.rng import derive_seed

#: Length of each device's monitor trace; indexing is cyclic, so this only
#: bounds how much history is pre-generated, not how long a fleet can run.
DEFAULT_HORIZON = 4096

#: Ticks between calibration refreshes (the paper's ~daily cycles, scaled
#: to job-sized ticks).
DEFAULT_RECALIBRATION_PERIOD = 512


@dataclass(frozen=True)
class InjectedWindow:
    """A scripted transient window overlaid on a device's monitor trace."""

    start: int
    length: int
    magnitude: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.length < 1:
            raise ValueError("length must be >= 1")

    def overlay(self, tick: int) -> float:
        if self.start <= tick < self.start + self.length:
            return self.magnitude
        return 0.0


class FleetDevice:
    """One machine's live state inside the fleet."""

    def __init__(
        self,
        model: DeviceModel,
        monitor: TransientTrace,
        seed: int,
        recalibration_period: int = DEFAULT_RECALIBRATION_PERIOD,
    ):
        if recalibration_period < 1:
            raise ValueError("recalibration_period must be >= 1")
        self.name = model.name
        self.monitor = monitor
        self.seed = seed
        self.recalibration_period = recalibration_period
        self.windows: List[InjectedWindow] = []
        self._model = model
        self._model_cycle = 0
        self._depth = 0
        self._lock = threading.Lock()

    # -- transient observation ----------------------------------------------

    def observed(self, tick: int) -> float:
        """|transient magnitude| the fleet monitor reads at ``tick``."""
        value = abs(self.monitor[tick])
        for window in self.windows:
            value += abs(window.overlay(tick))
        return value

    def observed_window(self, tick: int, width: int) -> np.ndarray:
        """The monitor series over ``[max(0, tick-width+1), tick]``."""
        if width < 1:
            raise ValueError("width must be >= 1")
        start = max(0, tick - width + 1)
        return np.array([self.observed(t) for t in range(start, tick + 1)])

    def inject(self, window: InjectedWindow) -> None:
        self.windows.append(window)

    # -- calibration over time ----------------------------------------------

    def model_at(self, tick: int) -> DeviceModel:
        """The device model under the calibration snapshot current at
        ``tick`` (refreshing through any elapsed cycles).

        A calibration-refresh fault (site ``device.calibration``) leaves
        the previous snapshot in service — stale but usable — and the
        cycle counter unadvanced, so the next ``model_at`` retries the
        refresh instead of silently skipping the cycle forever.
        """
        cycle = tick // self.recalibration_period
        with self._lock:
            while self._model_cycle < cycle:
                try:
                    INJECTOR.fire("device.calibration", run_id=self.name)
                except InjectedFault:
                    break  # serve the stale snapshot; retry next call
                self._model_cycle += 1
                self._model = self._model.recalibrate(
                    derive_seed(
                        self.seed, f"fleet:recal:{self.name}:{self._model_cycle}"
                    )
                )
            return self._model

    # -- queue depth --------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def reserve(self) -> int:
        with self._lock:
            self._depth += 1
            return self._depth

    def release(self) -> int:
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError(f"release() without reserve() on {self.name}")
            self._depth -= 1
            return self._depth

    def __repr__(self) -> str:
        return f"FleetDevice({self.name!r}, depth={self.depth})"


class DeviceFleet:
    """All fleet machines plus the shared clock they live on."""

    def __init__(
        self,
        machines: Optional[Sequence[str]] = None,
        seed: int = 2023,
        horizon: int = DEFAULT_HORIZON,
        recalibration_period: int = DEFAULT_RECALIBRATION_PERIOD,
        clock: Optional[SimulatedClock] = None,
    ):
        names = [m.lower() for m in (machines or available_machines())]
        if not names:
            raise ValueError("fleet needs at least one machine")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machines in {names}")
        self.seed = seed
        self.clock = clock if clock is not None else SimulatedClock()
        self.devices: Dict[str, FleetDevice] = {}
        for name in sorted(names):
            model = get_device(name, calibration_seed=seed)
            monitor = machine_trace(
                name,
                horizon,
                derive_seed(seed, f"fleet:monitor:{name}"),
                trial="fleet",
            )
            self.devices[name] = FleetDevice(
                model,
                monitor,
                seed=seed,
                recalibration_period=recalibration_period,
            )

    def device(self, name: str) -> FleetDevice:
        key = name.lower()
        if key not in self.devices:
            raise KeyError(
                f"machine {name!r} not in fleet; have: {sorted(self.devices)}"
            )
        return self.devices[key]

    def names(self) -> List[str]:
        return sorted(self.devices)

    def inject_transient(
        self, machine: str, start: int, length: int, magnitude: float = 1.0
    ) -> None:
        """Script a transient window onto one machine's monitor trace."""
        self.device(machine).inject(InjectedWindow(start, length, magnitude))

    def __iter__(self) -> Iterator[FleetDevice]:
        return iter(self.devices[name] for name in self.names())

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return f"DeviceFleet({self.names()}, t={self.clock.now()})"
