"""Fleet telemetry: per-device utilization, deferral and throughput counters.

One :class:`FleetTelemetry` instance is shared by the scheduler, the
worker pool and the service; every mutation is a single counter bump under
one lock, so reading a consistent snapshot is cheap. Counters deliberately
mirror the paper's accept/retry/defer vocabulary: a *deferral* is the
fleet-level analogue of QISMET deferring an iteration while a transient
passes — here a whole job is routed away from (or held off) a device whose
monitored noise is inside a predicted transient window.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Pseudo-device name for events not attributable to a single machine
#: (e.g. a job deferred because *every* device was inside a transient
#: window).
FLEET_WIDE = "(fleet)"


@dataclass
class DeviceCounters:
    """Per-device lifetime counters."""

    scheduled: int = 0
    completed: int = 0
    failed: int = 0
    deferred: int = 0
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "scheduled": self.scheduled,
            "completed": self.completed,
            "failed": self.failed,
            "deferred": self.deferred,
            "cache_hits": self.cache_hits,
        }


@dataclass
class TelemetryEvent:
    """One scheduling decision, for post-mortem inspection."""

    tick: int
    kind: str  # scheduled | completed | failed | deferred | cache-hit
    device: str
    run_id: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "kind": self.kind,
            "device": self.device,
            "run_id": self.run_id,
            "detail": self.detail,
        }


@dataclass
class FleetTelemetry:
    """Thread-safe counters + event log for one fleet service."""

    max_events: int = 4096
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    devices: Dict[str, DeviceCounters] = field(default_factory=dict)
    events: List[TelemetryEvent] = field(default_factory=list)
    first_tick: Optional[int] = None
    last_tick: int = 0

    _COUNTER_FOR_KIND = {
        "scheduled": "scheduled",
        "completed": "completed",
        "failed": "failed",
        "deferred": "deferred",
        "cache-hit": "cache_hits",
    }

    def _record(
        self, tick: int, kind: str, device: str, run_id: str, detail: str = ""
    ) -> None:
        attr = self._COUNTER_FOR_KIND[kind]
        with self._lock:
            counters = self.devices.setdefault(device, DeviceCounters())
            setattr(counters, attr, getattr(counters, attr) + 1)
            if self.first_tick is None:
                self.first_tick = tick
            self.last_tick = max(self.last_tick, tick)
            if len(self.events) < self.max_events:
                self.events.append(
                    TelemetryEvent(tick, kind, device, run_id, detail)
                )

    # -- recording ----------------------------------------------------------

    def record_scheduled(self, device: str, run_id: str, tick: int) -> None:
        self._record(tick, "scheduled", device, run_id)

    def record_completed(self, device: str, run_id: str, tick: int) -> None:
        self._record(tick, "completed", device, run_id)

    def record_failed(
        self, device: str, run_id: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "failed", device, run_id, detail)

    def record_deferred(
        self, device: str, run_id: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "deferred", device, run_id, detail)

    def record_cache_hit(self, run_id: str, tick: int) -> None:
        self._record(tick, "cache-hit", FLEET_WIDE, run_id)

    # -- reading ------------------------------------------------------------

    @property
    def devices_used(self) -> int:
        """Number of real devices that completed at least one job."""
        with self._lock:
            return sum(
                1
                for name, counters in self.devices.items()
                if name != FLEET_WIDE and counters.completed > 0
            )

    @property
    def total_deferrals(self) -> int:
        with self._lock:
            return sum(c.deferred for c in self.devices.values())

    @property
    def total_completed(self) -> int:
        with self._lock:
            return sum(
                c.completed
                for name, c in self.devices.items()
                if name != FLEET_WIDE
            )

    def throughput(self) -> float:
        """Completed jobs per simulated tick over the observed span."""
        with self._lock:
            completed = sum(
                c.completed
                for name, c in self.devices.items()
                if name != FLEET_WIDE
            )
            if self.first_tick is None:
                return 0.0
            span = max(1, self.last_tick - self.first_tick + 1)
            return completed / span

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view of everything (counters + derived rates)."""
        with self._lock:
            per_device = {
                name: counters.to_dict()
                for name, counters in sorted(self.devices.items())
            }
        return {
            "devices": per_device,
            "devices_used": self.devices_used,
            "total_deferrals": self.total_deferrals,
            "total_completed": self.total_completed,
            "throughput_jobs_per_tick": self.throughput(),
            "events": [event.to_dict() for event in self.events],
        }
