"""Fleet telemetry: per-device utilization, deferral and throughput counters.

One :class:`FleetTelemetry` instance is shared by the scheduler, the
worker pool and the service.  Since the obs layer landed it is a facade
over :mod:`repro.obs.metrics`: every per-device counter is an
``obs.metrics.Counter`` in a per-service :class:`MetricsRegistry`
(services never share device counters), and each bump is mirrored into
the process-wide ``METRICS`` registry as a ``fleet.<kind>`` total so
phase reports and the cache scoreboard see fleet activity without
knowing about services.  The public API and the ``snapshot()`` shape —
what the CLI prints — are unchanged from the pre-obs implementation.

Counters deliberately mirror the paper's accept/retry/defer vocabulary:
a *deferral* is the fleet-level analogue of QISMET deferring an
iteration while a transient passes — here a whole job is routed away
from (or held off) a device whose monitored noise is inside a predicted
transient window.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import METRICS, MetricsRegistry

#: Pseudo-device name for events not attributable to a single machine
#: (e.g. a job deferred because *every* device was inside a transient
#: window).
FLEET_WIDE = "(fleet)"

#: Counter attributes, in snapshot order.
_COUNTER_ATTRS = (
    "scheduled",
    "completed",
    "failed",
    "deferred",
    "cache_hits",
    "retries",
    "quarantines",
)


class DeviceCounters:
    """Per-device lifetime counters — a view over obs metrics Counters."""

    __slots__ = ("_device", "_registry")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        device: str = FLEET_WIDE,
    ):
        # A bare DeviceCounters() remains constructible (pre-obs API);
        # it just owns a private registry nobody else reads.
        self._registry = registry if registry is not None else MetricsRegistry()
        self._device = device

    def _counter(self, attr: str):
        return self._registry.counter(f"fleet.{self._device}.{attr}")

    def bump(self, attr: str) -> None:
        self._counter(attr).inc()

    @property
    def scheduled(self) -> int:
        return self._counter("scheduled").value

    @property
    def completed(self) -> int:
        return self._counter("completed").value

    @property
    def failed(self) -> int:
        return self._counter("failed").value

    @property
    def deferred(self) -> int:
        return self._counter("deferred").value

    @property
    def cache_hits(self) -> int:
        return self._counter("cache_hits").value

    @property
    def retries(self) -> int:
        return self._counter("retries").value

    @property
    def quarantines(self) -> int:
        return self._counter("quarantines").value

    def to_dict(self) -> Dict[str, int]:
        return {attr: self._counter(attr).value for attr in _COUNTER_ATTRS}


@dataclass
class TelemetryEvent:
    """One scheduling decision, for post-mortem inspection."""

    tick: int
    kind: str  # scheduled | completed | failed | deferred | cache-hit
    #       | retried | quarantined
    device: str
    run_id: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "kind": self.kind,
            "device": self.device,
            "run_id": self.run_id,
            "detail": self.detail,
        }


class FleetTelemetry:
    """Thread-safe counters + event log for one fleet service."""

    _COUNTER_FOR_KIND = {
        "scheduled": "scheduled",
        "completed": "completed",
        "failed": "failed",
        "deferred": "deferred",
        "cache-hit": "cache_hits",
        "retried": "retries",
        "quarantined": "quarantines",
    }

    def __init__(self, max_events: int = 4096):
        self.max_events = max_events
        self._lock = threading.Lock()
        #: Per-service metrics namespace (counter per device per kind).
        self.metrics = MetricsRegistry()
        self.devices: Dict[str, DeviceCounters] = {}
        self.events: List[TelemetryEvent] = []
        self.first_tick: Optional[int] = None
        self.last_tick: int = 0

    def _record(
        self, tick: int, kind: str, device: str, run_id: str, detail: str = ""
    ) -> None:
        attr = self._COUNTER_FOR_KIND[kind]
        with self._lock:
            counters = self.devices.get(device)
            if counters is None:
                counters = DeviceCounters(self.metrics, device)
                self.devices[device] = counters
            counters.bump(attr)
            if self.first_tick is None:
                self.first_tick = tick
            self.last_tick = max(self.last_tick, tick)
            if len(self.events) < self.max_events:
                self.events.append(
                    TelemetryEvent(tick, kind, device, run_id, detail)
                )
        # Process-wide totals for phase reports / `repro.obs metrics`.
        METRICS.counter(f"fleet.{attr}").inc()

    # -- recording ----------------------------------------------------------

    def record_scheduled(self, device: str, run_id: str, tick: int) -> None:
        self._record(tick, "scheduled", device, run_id)

    def record_completed(self, device: str, run_id: str, tick: int) -> None:
        self._record(tick, "completed", device, run_id)

    def record_failed(
        self, device: str, run_id: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "failed", device, run_id, detail)

    def record_deferred(
        self, device: str, run_id: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "deferred", device, run_id, detail)

    def record_cache_hit(self, run_id: str, tick: int) -> None:
        self._record(tick, "cache-hit", FLEET_WIDE, run_id)

    def record_retried(
        self, device: str, run_id: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "retried", device, run_id, detail)

    def record_quarantined(
        self, device: str, tick: int, detail: str = ""
    ) -> None:
        self._record(tick, "quarantined", device, "", detail)

    # -- reading ------------------------------------------------------------

    @property
    def devices_used(self) -> int:
        """Number of real devices that completed at least one job."""
        with self._lock:
            return sum(
                1
                for name, counters in self.devices.items()
                if name != FLEET_WIDE and counters.completed > 0
            )

    @property
    def total_deferrals(self) -> int:
        with self._lock:
            return sum(c.deferred for c in self.devices.values())

    @property
    def total_completed(self) -> int:
        with self._lock:
            return sum(
                c.completed
                for name, c in self.devices.items()
                if name != FLEET_WIDE
            )

    def throughput(self) -> float:
        """Completed jobs per simulated tick over the observed span."""
        with self._lock:
            completed = sum(
                c.completed
                for name, c in self.devices.items()
                if name != FLEET_WIDE
            )
            if self.first_tick is None:
                return 0.0
            span = max(1, self.last_tick - self.first_tick + 1)
            return completed / span

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view of everything (counters + derived rates)."""
        with self._lock:
            per_device = {
                name: counters.to_dict()
                for name, counters in sorted(self.devices.items())
            }
        return {
            "devices": per_device,
            "devices_used": self.devices_used,
            "total_deferrals": self.total_deferrals,
            "total_completed": self.total_completed,
            "throughput_jobs_per_tick": self.throughput(),
            "events": [event.to_dict() for event in self.events],
        }
