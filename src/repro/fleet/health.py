"""Device health tracking: quarantine, probing, re-admission.

The scheduler already *defers* jobs away from devices whose noise model
is inside a transient window; this module adds the coarser, stickier
layer the ROADMAP's Fleet-v2 item asks for — graceful degradation when a
device keeps failing. A device is **quarantined** (routed around for
``quarantine_ticks`` fleet-clock ticks) after either

* ``failure_threshold`` *consecutive* job failures, or
* ``transient_threshold`` *consecutive* CFAR/Kalman transient verdicts
  (a device stuck inside a transient window far longer than the
  per-job defer budget can absorb).

Once its quarantine window elapses, the next routing decision runs a
*health probe* (the scheduler's own transient check at the current
tick): a clean probe re-admits the device, a flagged probe extends the
quarantine by another window. Forced placements (defer budget exhausted)
ignore quarantine so a fully-quarantined fleet still makes progress.

Every quarantine is counted in :data:`repro.obs.METRICS` under
``device.quarantined`` and mirrored in fleet telemetry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import METRICS


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for quarantine entry and exit."""

    #: Consecutive job failures before quarantine.
    failure_threshold: int = 3
    #: Consecutive transient verdicts (dispatch-time or pre-run) before
    #: quarantine. Deliberately much larger than the per-job defer
    #: budget: ordinary transient windows resolve by deferral alone.
    transient_threshold: int = 24
    #: Quarantine length, in fleet-clock ticks.
    quarantine_ticks: int = 16

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.transient_threshold < 1:
            raise ValueError("transient_threshold must be >= 1")
        if self.quarantine_ticks < 1:
            raise ValueError("quarantine_ticks must be >= 1")


class DeviceHealth:
    """Per-device consecutive-failure counters and quarantine windows."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config if config is not None else HealthConfig()
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._transients: Dict[str, int] = {}
        #: device -> tick at which quarantine ends (exclusive).
        self._until: Dict[str, int] = {}
        self.quarantines = 0

    # -- signal intake -------------------------------------------------------

    def record_success(self, name: str) -> None:
        """A completed job clears both consecutive counters."""
        with self._lock:
            self._failures.pop(name, None)
            self._transients.pop(name, None)

    def record_failure(self, name: str, tick: int) -> bool:
        """Count a job failure; return True when it *newly* quarantines."""
        with self._lock:
            count = self._failures.get(name, 0) + 1
            self._failures[name] = count
            if count >= self.config.failure_threshold:
                return self._quarantine_locked(name, tick)
        return False

    def record_transient(self, name: str, tick: int) -> bool:
        """Count a transient verdict; return True when it quarantines."""
        with self._lock:
            count = self._transients.get(name, 0) + 1
            self._transients[name] = count
            if count >= self.config.transient_threshold:
                return self._quarantine_locked(name, tick)
        return False

    def _quarantine_locked(self, name: str, tick: int) -> bool:
        already = name in self._until
        self._until[name] = tick + self.config.quarantine_ticks
        self._failures.pop(name, None)
        self._transients.pop(name, None)
        if not already:
            self.quarantines += 1
            METRICS.counter("device.quarantined").inc()
        return not already

    # -- routing-side queries ------------------------------------------------

    def blocked(
        self, name: str, tick: int, probe: Optional[Callable[[str], bool]] = None
    ) -> bool:
        """Whether routing should skip ``name`` at ``tick``.

        Inside the quarantine window: always blocked. At or past its
        end: run ``probe`` (True = still unhealthy) — a clean probe
        re-admits the device, a flagged one extends the quarantine by
        another window.
        """
        with self._lock:
            until = self._until.get(name)
            if until is None:
                return False
            if tick < until:
                return True
            flagged = bool(probe(name)) if probe is not None else False
            if flagged:
                self._until[name] = tick + self.config.quarantine_ticks
                return True
            del self._until[name]
            return False

    def quarantined_devices(self) -> Dict[str, int]:
        """Snapshot of device -> quarantine-end tick."""
        with self._lock:
            return dict(self._until)
