"""The fleet service: submit plans, schedule across devices, collect results.

:class:`FleetService` glues the subsystem together —

* the :class:`~repro.fleet.registry.DeviceFleet` (machines + shared
  simulated clock),
* the :class:`~repro.fleet.store.JobStore` (persistent, dedupes resubmitted
  specs by content-hash run id),
* the :class:`~repro.fleet.scheduler.TransientAwareScheduler` (routes jobs
  away from predicted transient windows, load-balances otherwise),
* a :class:`~repro.fleet.workers.WorkerPool` (one thread per device running
  the existing :func:`~repro.runtime.execute.execute_run` hot path),
* :class:`~repro.fleet.telemetry.FleetTelemetry` (per-device utilization /
  deferral / throughput counters).

Because every spec is fully seed-determined, *where* and *when* a job runs
changes only the telemetry — results are bit-identical to the serial
executor's, which is the invariant that makes fleet-scale execution safe
to switch on via ``REPRO_EXECUTOR=fleet``.

Dispatch model: the caller's thread runs the dispatch loop (`drain`),
placing queued jobs on devices and advancing the clock whenever the whole
fleet is inside transient windows; workers execute, re-check their
device's transient state at start (deferring back to the dispatcher while
the job still has budget), and advance the clock as jobs finish.
"""

from __future__ import annotations

import threading
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.faults.inject import InjectedCrash
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.fleet.health import DeviceHealth, HealthConfig
from repro.fleet.registry import DeviceFleet, FleetDevice
from repro.fleet.scheduler import SchedulerConfig, TransientAwareScheduler
from repro.fleet.store import DONE, FAILED, RUNNING, JobStore
from repro.fleet.telemetry import FLEET_WIDE, FleetTelemetry
from repro.obs import METRICS, TRACER, monotonic
from repro.runtime.execute import execute_run
from repro.runtime.results import PlanResult, RunResult
from repro.runtime.spec import ExperimentPlan, RunSpec


class FleetJob:
    """In-memory handle for one queued spec during a drain."""

    __slots__ = ("spec", "run_id", "defers", "attempts", "tried")

    def __init__(self, spec: RunSpec, attempts: int = 0):
        self.spec = spec
        self.run_id = spec.run_id
        self.defers = 0
        self.attempts = attempts
        self.tried: List[str] = []


class FleetError(RuntimeError):
    """Raised when a drain finishes with failed jobs."""


class FleetService:
    """Transient-aware multi-device job scheduling over the fake fleet."""

    def __init__(
        self,
        machines: Optional[Sequence[str]] = None,
        db_path: Union[str, None] = None,
        seed: int = 2023,
        config: Optional[SchedulerConfig] = None,
        fleet: Optional[DeviceFleet] = None,
        execute: Callable[[RunSpec], RunResult] = execute_run,
        retry: Optional[RetryPolicy] = None,
        health: Optional[Union[DeviceHealth, HealthConfig]] = None,
    ):
        self.fleet = fleet or DeviceFleet(machines=machines, seed=seed)
        self.clock = self.fleet.clock
        self.store = JobStore(db_path if db_path else ":memory:")
        #: Jobs found stranded ``running`` by a crashed predecessor and
        #: requeued on open (crash recovery on shared stores).
        self.recovered = self.store.requeue_running()
        #: Uniform transient-failure policy for workers (jitter stream
        #: seeded by the fleet seed so backoff schedules reproduce).
        self.retry = retry if retry is not None else RetryPolicy.from_env(seed=seed)
        if isinstance(health, HealthConfig):
            health = DeviceHealth(health)
        self.health = health if health is not None else DeviceHealth()
        self.scheduler = TransientAwareScheduler(
            self.fleet, config=config, health=self.health
        )
        self.telemetry = FleetTelemetry()
        self.execute = execute
        self._pending: deque = deque()
        self._inflight = 0
        #: run_ids this service is currently responsible for (pending or
        #: in flight) — the guard against double-queueing one spec.
        self._active: set = set()
        self._wake = threading.Condition()
        self._closed = False
        #: telemetry counters already folded into the store's rollup.
        self._persisted_counters: Dict[str, Dict[str, int]] = {}
        self._persisted_span = 0
        #: run_ids that were satisfied straight from the store this session.
        self.store_hits = 0
        #: the active drain's span; worker threads attach their job spans
        #: under it so the trace reassembles into one tree per drain.
        self._drain_span = None

    # -- lifecycle ----------------------------------------------------------

    def _persist_telemetry(self) -> None:
        """Fold telemetry deltas since the last persist into the store.

        Called at the end of every drain (and on close), so the rollup is
        queryable by ``python -m repro.fleet stats`` even for callers that
        never close the service explicitly (e.g. ``default_executor()``).
        """
        snapshot = self.telemetry.snapshot()
        delta: Dict[str, Dict[str, int]] = {}
        for device, counters in snapshot["devices"].items():
            previous = self._persisted_counters.get(device, {})
            changed = {
                key: value - previous.get(key, 0)
                for key, value in counters.items()
            }
            if any(changed.values()):
                delta[device] = changed
        first = self.telemetry.first_tick
        span = 0 if first is None else self.telemetry.last_tick - first + 1
        span_delta = span - self._persisted_span
        if delta or span_delta:
            self.store.accumulate_telemetry(
                {"devices": delta, "ticks_elapsed": span_delta}
            )
            self._persisted_counters = {
                device: dict(counters)
                for device, counters in snapshot["devices"].items()
            }
            self._persisted_span = span

    def close(self) -> None:
        """Persist any unflushed telemetry and close the store."""
        if self._closed:
            return
        self._closed = True
        self._persist_telemetry()
        self.store.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> List[str]:
        """Enqueue specs (deduping against the store); returns run ids.

        Specs whose run id is already ``done`` in the store are counted as
        store hits and not re-executed; duplicates within ``specs`` — or
        resubmissions of a spec this service is already running — attach
        to the single queued job instead of executing twice.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        run_ids: List[str] = []
        tick = self.clock.now()
        for spec in specs:
            run_ids.append(spec.run_id)
            with self._wake:
                if spec.run_id in self._active:
                    continue
            record = call_with_retry(
                lambda spec=spec: self.store.enqueue(spec, tick=tick),
                policy=self.retry,
                label=spec.run_id,
            )
            if record.is_done:
                self.store_hits += 1
                self.telemetry.record_cache_hit(spec.run_id, tick)
                continue
            with self._wake:
                if spec.run_id in self._active:  # raced with another submit
                    continue
                self._active.add(spec.run_id)
                self._pending.append(FleetJob(spec, attempts=record.attempts))
                self._wake.notify_all()
        return run_ids

    # -- dispatch loop ------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Run the dispatch loop until every submitted job is done/failed.

        ``timeout`` (wall-clock seconds) guards against a wedged fleet;
        ``None`` waits indefinitely. On timeout, still-pending and
        still-running jobs are marked ``failed`` with a ``timeout``
        detail (resubmitting them re-queues cleanly) before the
        ``TimeoutError`` propagates — a timed-out drain never strands
        rows in ``running``. Worker threads live only for the duration
        of the drain, and the telemetry rollup is persisted when it
        ends — repeated drains on one service neither leak threads nor
        lose counters.
        """
        from repro.fleet.workers import WorkerPool

        if self._closed:
            raise RuntimeError("service is closed")
        with self._wake:
            idle = not self._pending and self._inflight == 0
        if idle:  # all-hit submission: no threads to spin up
            self._persist_telemetry()
            return
        self._warm_plan_cache()
        pool = WorkerPool(self.fleet, self._run_on_device)
        pool.start()
        deadline = None if timeout is None else monotonic() + timeout
        with self._wake:
            queued = len(self._pending)
        span = TRACER.span("fleet.drain", category="fleet", queued=queued)
        try:
            with span:
                self._drain_span = span
                while True:
                    with self._wake:
                        if not self._pending and self._inflight == 0:
                            return
                        job = (
                            self._pending.popleft() if self._pending else None
                        )
                    if job is None:
                        with self._wake:
                            if self._pending or self._inflight == 0:
                                continue
                            self._wake.wait(timeout=0.05)
                        _check_deadline(deadline)
                        continue
                    self._dispatch(pool, job)
                    _check_deadline(deadline)
        except TimeoutError:
            self._abort_drain(timeout)
            raise
        finally:
            self._drain_span = None
            pool.stop()
            self._persist_telemetry()

    def _abort_drain(self, timeout: Optional[float]) -> None:
        """Timeout cleanup: fail whatever the drain will not finish.

        Pending jobs are failed outright; rows still ``running`` are
        failed too, but a worker that completes after this sweep wins —
        ``mark_done`` is idempotent and allowed from ``failed``, so a
        straggler's success overwrites the timeout verdict rather than
        colliding with it. ``_inflight`` is deliberately untouched: the
        workers' own ``finally`` blocks decrement it.
        """
        detail = f"timeout: drain exceeded {timeout}s"
        tick = self.clock.now()
        with self._wake:
            stranded = list(self._pending)
            self._pending.clear()
            for job in stranded:
                self._active.discard(job.run_id)
        for job in stranded:
            self.store.mark_failed(job.run_id, detail, tick)
            self.telemetry.record_failed(
                FLEET_WIDE, job.run_id, tick, detail=detail
            )
        for run_id in self.store.run_ids(status=RUNNING):
            self.store.mark_failed(run_id, detail, tick)
            self.telemetry.record_failed(
                FLEET_WIDE, run_id, tick, detail=detail
            )

    def _warm_plan_cache(self) -> None:
        """Compile each pending app's ansatz once before workers start.

        Worker threads all compile through the shared
        :data:`repro.compiler.PLAN_CACHE`; warming it here means the
        per-device threads only ever *bind* parameters against cached
        plans (see :func:`repro.runtime.execute.warm_plan_cache`).
        """
        from repro.runtime.execute import warm_plan_cache

        warmed = set()
        with self._wake:
            jobs = list(self._pending)
        for job in jobs:
            name = job.spec.app_name
            if name in warmed:
                continue
            warmed.add(name)
            try:
                warm_plan_cache(job.spec)
            # repro: allow-swallow — warm-up is best effort; workers compile
            except Exception:  # pragma: no cover
                pass

    def _dispatch(self, pool, job: FleetJob) -> None:
        tick = self.clock.now()
        force = job.defers >= self.scheduler.config.defer_budget
        with TRACER.span(
            "fleet.dispatch",
            category="fleet",
            run_id=job.run_id,
            tick=tick,
            force=force,
        ) as span:
            decision = self.scheduler.route(
                job.spec, tick, exclude=job.tried, force=force
            )
            span.set(
                placed=decision.placed,
                device=decision.device.name if decision.placed else None,
                deferred_from=len(decision.deferred_from),
            )
        for verdict in decision.deferred_from:
            self.telemetry.record_deferred(
                verdict.device,
                job.run_id,
                tick,
                detail=(
                    f"predicted={verdict.predicted:.3f}"
                    f" cfar={verdict.cfar_flag}"
                ),
            )
            if self.health.record_transient(verdict.device, tick):
                self.telemetry.record_quarantined(
                    verdict.device, tick, detail="consecutive transients"
                )
        if not decision.placed:
            # Whole fleet inside transient windows: QISMET-style deferral.
            job.defers += 1
            job.tried.clear()
            self.store.record_defer(job.run_id)
            self.telemetry.record_deferred(
                FLEET_WIDE, job.run_id, tick, detail="all devices transient"
            )
            self.clock.advance()  # let the window pass
            with self._wake:
                self._pending.append(job)
            return
        if decision.deferred_from:
            job.defers += len(decision.deferred_from)
            self.store.record_defer(
                job.run_id, count=len(decision.deferred_from)
            )
        device = decision.device
        device.reserve()
        with self._wake:
            self._inflight += 1
        pool.submit(device.name, job)

    # -- worker-side execution ----------------------------------------------

    def _run_on_device(self, device: FleetDevice, job: FleetJob) -> None:
        """Execute (or re-defer) one job on ``device``; worker-thread code.

        Structured so that *no* exception escapes into the worker loop: a
        retryable failure in the execute hook re-queues the job (with
        backoff on the simulated clock) until the retry budget runs out,
        any other failure fails the job; a failure in the harness itself
        (store I/O, telemetry) also fails the job rather than killing the
        device's worker thread and wedging the drain. An
        :class:`InjectedCrash` simulates process death: the job's store
        row is left exactly as the "dying" transition left it, which is
        what the resume path recovers from.
        """
        with TRACER.attach(self._drain_span), TRACER.span(
            "fleet.job",
            category="fleet",
            run_id=job.run_id,
            device=device.name,
        ) as span:
            self._execute_on_device(device, job, span)

    def _execute_on_device(self, device: FleetDevice, job: FleetJob, span) -> None:
        """Exception-isolating body of :meth:`_run_on_device`."""
        requeue = False
        finished = False
        try:
            tick = self.clock.now()
            if (
                job.defers < self.scheduler.config.defer_budget
                and self.scheduler.in_transient_window(device, tick)
            ):
                # The device entered a transient window between routing and
                # execution: hand the job back for rerouting.
                job.defers += 1
                job.tried.append(device.name)
                self.store.record_defer(job.run_id)
                self.telemetry.record_deferred(
                    device.name, job.run_id, tick, detail="pre-run re-check"
                )
                span.set(outcome="deferred")
                requeue = True
                return
            self.store.mark_running(job.run_id, device.name, tick)
            self.telemetry.record_scheduled(device.name, job.run_id, tick)
            try:
                result = self.execute(job.spec)
            except InjectedCrash:
                raise  # simulated process death — never absorbed here
            except Exception as exc:  # job isolation boundary
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                if (
                    self.retry.is_retryable(exc)
                    and job.attempts + 1 < self.retry.max_attempts
                ):
                    # Transient failure with budget left: back off on the
                    # simulated clock and hand the job back for rerouting.
                    job.attempts = self.store.record_retry(
                        job.run_id, detail, self.clock.now()
                    )
                    job.tried.append(device.name)
                    METRICS.counter("retry.attempts").inc()
                    self.telemetry.record_retried(
                        device.name,
                        job.run_id,
                        self.clock.now(),
                        detail=detail,
                    )
                    self.clock.advance(
                        self.retry.backoff_ticks(job.run_id, job.attempts)
                    )
                    span.set(outcome="retried", attempts=job.attempts)
                    requeue = True
                    return
                if self.retry.is_retryable(exc):
                    METRICS.counter("retry.gave_up").inc()
                self.store.mark_failed(job.run_id, detail, self.clock.now())
                self.telemetry.record_failed(
                    device.name, job.run_id, self.clock.now(), detail=detail
                )
                if self.health.record_failure(device.name, self.clock.now()):
                    self.telemetry.record_quarantined(
                        device.name,
                        self.clock.now(),
                        detail="consecutive failures",
                    )
                span.set(outcome="failed")
            else:
                self.store.mark_done(job.run_id, result, self.clock.now())
                self.telemetry.record_completed(
                    device.name, job.run_id, self.clock.now()
                )
                self.health.record_success(device.name)
                span.set(outcome="completed")
            finished = True
        except InjectedCrash:
            # Simulated process death before a commit: the store row stays
            # exactly where the crash left it (``running`` or ``queued``)
            # and is recovered by the next service's ``requeue_running`` /
            # ``drain --resume``. Only in-memory bookkeeping is released
            # so the surviving drain can terminate.
            span.set(outcome="crashed")
            finished = True
        except Exception as exc:  # harness failure: fail the job, not the worker
            detail = f"fleet internal error on {device.name}: {exc!r}"
            try:
                self.store.mark_failed(job.run_id, detail, self.clock.now())
            # repro: allow-swallow — store down; telemetry still records it
            except Exception:
                pass
            self.telemetry.record_failed(
                device.name, job.run_id, self.clock.now(), detail=detail
            )
            span.set(outcome="error")
            finished = True
        finally:
            try:
                device.release()
            except RuntimeError:  # pragma: no cover — depth already zero
                pass
            self.clock.advance()
            with self._wake:
                self._inflight -= 1
                if requeue:
                    self._pending.append(job)
                elif finished:
                    self._active.discard(job.run_id)
                self._wake.notify_all()

    # -- high-level entry points --------------------------------------------

    def run_specs(
        self, specs: Sequence[RunSpec], timeout: Optional[float] = None
    ) -> List[RunResult]:
        """Submit + drain + collect, preserving input order.

        Results served from the store (dedupe hits) come back with
        ``from_cache=True`` and zero elapsed time, mirroring
        :class:`~repro.runtime.executors.CachedExecutor` semantics.
        Raises :class:`FleetError` if any job failed.
        """
        specs = list(specs)
        submitted = {spec.run_id for spec in specs}
        known_done = set(self.store.run_ids(status=DONE))
        self.submit(specs)
        self.drain(timeout=timeout)
        # Only *this* submission's failures matter — a shared store may
        # hold failed jobs from unrelated plans.
        failed = [
            record
            for record in self.store.jobs(status=FAILED)
            if record.run_id in submitted
        ]
        if failed:
            details = "; ".join(
                f"{record.run_id}: {record.error}" for record in failed[:5]
            )
            raise FleetError(
                f"{len(failed)} fleet job(s) failed ({details})"
            )
        results: List[RunResult] = []
        cache: Dict[str, RunResult] = {}
        for spec in specs:
            if spec.run_id not in cache:
                result = self.store.result(spec.run_id)
                if result is None:  # pragma: no cover — drain guarantees done
                    raise FleetError(f"job {spec.run_id} has no stored result")
                if spec.run_id in known_done:
                    result.from_cache = True
                    result.elapsed_s = 0.0
                cache[spec.run_id] = result
            results.append(cache[spec.run_id])
        return results

    def run_plan(
        self, plan: ExperimentPlan, timeout: Optional[float] = None
    ) -> PlanResult:
        return PlanResult(
            runs=self.run_specs(plan.expand(), timeout=timeout),
            plan=plan.to_dict(),
        )

    # -- introspection -------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Store counts + live telemetry in one JSON-able dict."""
        return {
            "counts": self.store.counts(),
            "clock": self.clock.now(),
            "telemetry": self.telemetry.snapshot(),
        }


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and monotonic() > deadline:
        raise TimeoutError("fleet drain exceeded its timeout")
