"""``python -m repro.fleet`` — submit plans, poll jobs, dump telemetry.

Subcommands:

* ``submit``  — build an :class:`~repro.runtime.spec.ExperimentPlan` from
  flags (or a plan JSON file) and run it through the fleet service;
* ``drain``   — finish whatever an existing job store still owes:
  requeue stranded ``running`` rows (crash recovery) and execute every
  ``queued`` job; ``--resume`` additionally re-queues ``failed`` jobs
  (e.g. ones a timed-out drain marked with a ``timeout`` detail). A
  sweep killed mid-drain finishes with bit-identical payloads under
  ``drain --resume`` because every spec is seed-determined and
  ``mark_done`` dedupes against already-persisted results;
* ``status``  — per-status job counts and rows from a job store
  (``--expect done`` exits non-zero unless every job is done — the CI
  integration contract);
* ``stats``   — accumulated per-device utilization / deferral /
  throughput counters;
* ``devices`` — the fleet's machines and their transient profiles.

The job store path comes from ``--db`` or ``REPRO_FLEET_DB``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import List, Optional

from repro.fleet.executor import FLEET_DB_ENV, FleetExecutor
from repro.fleet.store import DONE, JobStore
from repro.runtime.spec import ExperimentPlan
from repro.store.export import export_plan_result


def _db_path(args) -> Optional[str]:
    return args.db or os.environ.get(FLEET_DB_ENV, "").strip() or None


def _print_table(rows: List[List[str]], header: List[str]) -> None:
    widths = [
        max(len(str(row[i])) for row in [header, *rows])
        for i in range(len(header))
    ]
    for row in [header, *rows]:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))


# -- submit ------------------------------------------------------------------


def _plan_from_args(args) -> ExperimentPlan:
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as handle:
            return ExperimentPlan.from_dict(json.load(handle))
    return ExperimentPlan(
        apps=tuple(args.apps),
        schemes=tuple(args.schemes),
        iterations=args.iterations,
        seeds=tuple(args.seeds),
        shots=args.shots,
        name=args.name,
    )


def cmd_submit(args) -> int:
    plan = _plan_from_args(args)
    print(
        f"plan {plan.name or plan.plan_id}: {len(plan)} runs "
        f"({len(plan.apps)} apps x {len(plan.schemes)} schemes x "
        f"{len(plan.seeds)} seeds)"
    )
    with FleetExecutor(
        machines=args.machines or None,
        db_path=_db_path(args),
        seed=args.fleet_seed,
        timeout=args.timeout,
    ) as executor:
        outcome = executor.run_plan(plan)
        snapshot = executor.telemetry.snapshot()
        rows = [
            [
                run.run_id,
                run.spec.app_name,
                run.spec.scheme,
                "cached" if run.from_cache else "done",
                f"{run.elapsed_s:.2f}s",
            ]
            for run in outcome
        ]
        _print_table(rows, ["run_id", "app", "scheme", "status", "elapsed"])
        print(
            f"\n{len(outcome)} runs | store hits {executor.hits} "
            f"| executed {executor.misses} "
            f"| devices used {snapshot['devices_used']} "
            f"| deferrals {snapshot['total_deferrals']}"
        )
        export_to = args.export
        if args.out:
            # One-release compatibility shim for the pre-store flag; the
            # export below produces byte-identical files.
            warnings.warn(
                "--out is deprecated; use --export (store-backed export)",
                DeprecationWarning,
                stacklevel=2,
            )
            export_to = export_to or args.out
        if export_to:
            export_plan_result(
                executor.results,
                [run.run_id for run in outcome],
                export_to,
                plan=plan.to_dict(),
            )
            print(f"plan result saved to {export_to}")
    return 0


# -- drain (crash-safe resume) -------------------------------------------------


def cmd_drain(args) -> int:
    from repro.fleet.service import FleetError, FleetService
    from repro.fleet.store import FAILED, QUEUED

    db = _db_path(args)
    if db is None:
        print("drain requires --db or REPRO_FLEET_DB", file=sys.stderr)
        return 2
    with FleetService(
        machines=args.machines or None,
        db_path=db,
        seed=args.fleet_seed,
    ) as service:
        # Constructing the service already requeued stranded `running`
        # rows (crash recovery); --resume also retries failed jobs.
        recovered = service.recovered
        pending = service.store.jobs(status=QUEUED)
        retried = []
        if args.resume:
            retried = service.store.jobs(status=FAILED)
        specs = [record.spec for record in pending + retried]
        print(
            f"drain: {recovered} recovered, {len(pending)} queued, "
            f"{len(retried)} failed re-queued"
        )
        if not specs:
            print("nothing to drain")
            return 0
        try:
            service.run_specs(specs, timeout=args.timeout)
        except (FleetError, TimeoutError) as exc:
            print(f"drain failed: {exc}", file=sys.stderr)
            return 1
        counts = service.store.counts()
    print(" | ".join(f"{status}={n}" for status, n in sorted(counts.items())))
    print(f"drained {len(specs)} job(s)")
    return 0


# -- status ------------------------------------------------------------------


def cmd_status(args) -> int:
    db = _db_path(args)
    if db is None:
        print("status requires --db or REPRO_FLEET_DB", file=sys.stderr)
        return 2
    with JobStore(db) as store:
        counts = store.counts()
        jobs = store.jobs(status=args.status)
    print(" | ".join(f"{status}={n}" for status, n in sorted(counts.items())))
    rows = [
        [
            record.run_id,
            record.spec.app_name,
            record.spec.scheme,
            record.status,
            record.device or "-",
            str(record.defers),
        ]
        for record in jobs[: args.limit]
    ]
    if rows:
        _print_table(
            rows, ["run_id", "app", "scheme", "status", "device", "defers"]
        )
    if args.expect:
        total = sum(counts.values())
        expected = counts.get(args.expect, 0)
        if total == 0 or expected != total:
            print(
                f"expectation failed: {expected}/{total} jobs are "
                f"{args.expect!r}",
                file=sys.stderr,
            )
            return 1
        print(f"all {total} jobs are {args.expect!r}")
    return 0


# -- stats -------------------------------------------------------------------


def stats_payload(store: JobStore) -> dict:
    """Assemble the ``stats`` view from the persisted telemetry rollup.

    The rollup is fed by the metrics-registry-backed
    :class:`~repro.fleet.telemetry.FleetTelemetry` at the end of every
    drain, so the stored-results breakdown here is the per-device
    ``completed`` counters — no re-decoding of result payloads on every
    call.  ``tests/test_fleet_cli.py`` pins this against the
    store-derived numbers so the shortcut can never drift.
    """
    rollup = store.telemetry()
    devices = rollup["devices"]
    completed = sum(c["completed"] for c in devices.values())
    ticks = rollup["ticks"]
    return {
        "devices": devices,
        "ticks": ticks,
        "completed": completed,
        "throughput": completed / ticks if ticks else 0.0,
        "stored_results": {
            "total": completed,
            "by_device": {
                name: c["completed"]
                for name, c in sorted(devices.items())
                if c["completed"]
            },
        },
    }


def cmd_stats(args) -> int:
    db = _db_path(args)
    if db is None:
        print("stats requires --db or REPRO_FLEET_DB", file=sys.stderr)
        return 2
    with JobStore(db) as store:
        payload = stats_payload(store)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    devices = payload["devices"]
    if not devices:
        print("no telemetry recorded yet")
        return 0
    total_completed = payload["completed"] or 1
    rows = [
        [
            name,
            str(c["scheduled"]),
            str(c["completed"]),
            str(c["failed"]),
            str(c["deferred"]),
            str(c["cache_hits"]),
            f"{100.0 * c['completed'] / total_completed:.0f}%",
        ]
        for name, c in sorted(devices.items())
    ]
    _print_table(
        rows,
        [
            "device",
            "scheduled",
            "completed",
            "failed",
            "deferred",
            "cached",
            "share",
        ],
    )
    ticks = payload["ticks"]
    completed = payload["completed"]
    if ticks:
        print(f"\nthroughput: {completed / ticks:.2f} jobs/tick over {ticks} ticks")
    stored = payload["stored_results"]
    if stored["total"]:
        breakdown = ", ".join(
            f"{name}={n}" for name, n in sorted(stored["by_device"].items())
        )
        print(f"stored results: {stored['total']} ({breakdown})")
    return 0


# -- devices -----------------------------------------------------------------


def cmd_devices(args) -> int:
    from repro.devices.ibmq_fake import available_machines, get_device
    from repro.noise.transient.trace_generator import profile_for_machine

    rows = []
    for name in args.machines or available_machines():
        device = get_device(name)
        profile = profile_for_machine(name)
        rows.append(
            [
                device.name,
                str(device.num_qubits),
                f"{device.mean_t1_us():.0f}us",
                f"{profile.spike_rate:.3f}",
                f"{profile.spike_magnitude:.2f}",
            ]
        )
    _print_table(
        rows, ["machine", "qubits", "mean T1", "spike rate", "spike mag"]
    )
    return 0


# -- parser ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="run a plan through the fleet")
    submit.add_argument("--apps", nargs="+", default=["App1"])
    submit.add_argument("--schemes", nargs="+", default=["baseline", "qismet"])
    submit.add_argument("--iterations", type=int, default=100)
    submit.add_argument("--seeds", nargs="+", type=int, default=[2023])
    submit.add_argument("--shots", type=int, default=8192)
    submit.add_argument("--name", default="fleet-cli")
    submit.add_argument("--plan", help="plan JSON file (overrides flags)")
    submit.add_argument("--machines", nargs="*", help="fleet machine subset")
    submit.add_argument("--db", help=f"job store path (or {FLEET_DB_ENV})")
    submit.add_argument("--fleet-seed", type=int, default=2023)
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument(
        "--export",
        help="export the plan result (store-backed) as PlanResult JSON",
    )
    submit.add_argument(
        "--out",
        help="deprecated alias of --export (one-release compatibility shim)",
    )
    submit.set_defaults(func=cmd_submit)

    drain = sub.add_parser(
        "drain", help="finish a job store's queued (and stranded) jobs"
    )
    drain.add_argument("--db", help=f"job store path (or {FLEET_DB_ENV})")
    drain.add_argument("--machines", nargs="*", help="fleet machine subset")
    drain.add_argument("--fleet-seed", type=int, default=2023)
    drain.add_argument("--timeout", type=float, default=None)
    drain.add_argument(
        "--resume",
        action="store_true",
        help="also re-queue failed jobs (continue a killed/timed-out sweep)",
    )
    drain.set_defaults(func=cmd_drain)

    status = sub.add_parser("status", help="poll a job store")
    status.add_argument("--db", help=f"job store path (or {FLEET_DB_ENV})")
    status.add_argument("--status", help="filter rows by status")
    status.add_argument("--limit", type=int, default=50)
    status.add_argument(
        "--expect",
        nargs="?",
        const=DONE,
        help="exit non-zero unless ALL jobs have this status (default: done)",
    )
    status.set_defaults(func=cmd_status)

    stats = sub.add_parser("stats", help="dump the telemetry rollup")
    stats.add_argument("--db", help=f"job store path (or {FLEET_DB_ENV})")
    stats.add_argument(
        "--json", action="store_true", help="emit the rollup as JSON"
    )
    stats.set_defaults(func=cmd_stats)

    devices = sub.add_parser("devices", help="list fleet machines")
    devices.add_argument("--machines", nargs="*")
    devices.set_defaults(func=cmd_devices)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
