"""``repro.analysis`` — the static-analysis subsystem.

Two analyzer tiers feed one diagnostics framework
(:class:`~repro.analysis.diagnostics.Diagnostic` /
:class:`~repro.analysis.diagnostics.AnalysisReport`, stable ``RPR0xx``
codes, text + JSON renderers):

* **Tier 1 — IR verifiers** (:mod:`repro.analysis.verify`): structural
  and physics checks over circuits, gate plans and noise plans —
  unitarity of fused matrices, CPTP of every Kraus site, parameter-map
  completeness, post-routing device conformance, cache-key soundness.
  Wired into the compiler as the opt-in ``VerifyPlan`` pass behind
  ``REPRO_VERIFY=1`` (always-on in the test suite).
* **Tier 2 — determinism/concurrency lint** (:mod:`repro.analysis.lint`):
  AST rules catching unseeded RNG construction, seeds not threaded
  through ``ensure_rng``, set iteration in seed-critical modules and
  unlocked module-level caches; silence one line with
  ``# repro: allow-<slug>``.

CLI: ``python -m repro.analysis {lint,verify,codes}``.
"""

from repro.analysis.diagnostics import (
    CODE_TABLE,
    AnalysisReport,
    Diagnostic,
    Severity,
    make_diagnostic,
    merge_reports,
    render_code_table,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.verify import (
    DEFAULT_ATOL,
    PlanVerificationError,
    verification_enabled,
    verify_circuit,
    verify_compilation_unit,
    verify_device_compilation,
    verify_gate_plan,
    verify_kraus_site,
    verify_noise_plan,
)

__all__ = [
    "CODE_TABLE",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "make_diagnostic",
    "merge_reports",
    "render_code_table",
    "lint_paths",
    "lint_source",
    "DEFAULT_ATOL",
    "PlanVerificationError",
    "verification_enabled",
    "verify_circuit",
    "verify_compilation_unit",
    "verify_device_compilation",
    "verify_gate_plan",
    "verify_kraus_site",
    "verify_noise_plan",
]
