"""Tier 1 — structural and physics verifiers over the compiler IRs.

Every invariant the execution engines silently assume is checked here
*before a single state vector is allocated*:

* :func:`verify_circuit` — qubit bounds/arity, known gates, finite bound
  parameters;
* :func:`verify_gate_plan` — plan-op structure, affine-map completeness
  (every slot backed by a ``param_idx`` inside the parameter table, every
  table row owned by exactly one op), unitarity of every static (possibly
  fused) matrix, and cache-key soundness against the source circuit;
* :func:`verify_noise_plan` — everything above plus CPTP validation of
  every pre-stacked Kraus site, superoperator/probe consistency, and the
  noise-model fingerprint actually folded into the cache key;
* :func:`verify_device_compilation` — post-routing conformance: native
  basis membership, coupling-map adjacency (through the trimmed->physical
  qubit map) and logical measurement coverage.

The compiler runs these as the opt-in :class:`~repro.compiler.passes.
VerifyPlan` pipeline pass behind ``REPRO_VERIFY=1`` (always-on in the
test suite); ``python -m repro.analysis verify --all-apps`` sweeps every
Table-1 registry app through compile+verify with and without a noise
model.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import AnalysisReport
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATES
from repro.circuits.parameter import ParameterExpression

#: Numeric tolerance for unitarity / CPTP / consistency checks.
DEFAULT_ATOL = 1e-8


def verification_enabled() -> bool:
    """Whether the compiler should verify plans (``REPRO_VERIFY=1``)."""
    value = os.environ.get("REPRO_VERIFY", "").strip().lower()
    return value in ("1", "on", "true", "yes")


class PlanVerificationError(RuntimeError):
    """Raised by the ``VerifyPlan`` pass when a plan fails verification."""

    def __init__(self, report: AnalysisReport, context: str = "plan"):
        self.report = report
        super().__init__(
            f"{context} failed static verification:\n" + report.render_text()
        )


# -- circuit-level -------------------------------------------------------------


def verify_circuit(
    circuit: QuantumCircuit, report: Optional[AnalysisReport] = None
) -> AnalysisReport:
    """Structural checks over a :class:`QuantumCircuit`."""
    report = report if report is not None else AnalysisReport()
    width = circuit.num_qubits
    for index, inst in enumerate(circuit):
        locus = f"{circuit.name}[{index}]({inst.name})"
        for qubit in inst.qubits:
            if not 0 <= qubit < width:
                report.add(
                    "RPR001",
                    f"qubit {qubit} out of range for width {width}",
                    locus=locus,
                )
        if len(set(inst.qubits)) != len(inst.qubits):
            report.add(
                "RPR002", f"duplicate qubit operands {inst.qubits}", locus=locus
            )
        if inst.name == "barrier":
            continue
        spec = GATES.get(inst.name)
        if spec is None:
            report.add("RPR002", f"unknown gate {inst.name!r}", locus=locus)
            continue
        if len(inst.qubits) != spec.num_qubits:
            report.add(
                "RPR002",
                f"gate {inst.name!r} takes {spec.num_qubits} qubits, "
                f"got {len(inst.qubits)}",
                locus=locus,
            )
        if len(inst.params) != spec.num_params:
            report.add(
                "RPR004",
                f"gate {inst.name!r} takes {spec.num_params} params, "
                f"got {len(inst.params)}",
                locus=locus,
            )
        for param in inst.params:
            if not isinstance(param, ParameterExpression) and not np.isfinite(
                float(param)
            ):
                report.add(
                    "RPR004", f"non-finite bound parameter {param!r}", locus=locus
                )
    return report


# -- shared op checks ----------------------------------------------------------


def _check_static_matrix(
    matrix: np.ndarray, qubits: Tuple[int, ...], locus: str,
    report: AnalysisReport, atol: float,
) -> None:
    dim = 2 ** len(qubits)
    matrix = np.asarray(matrix)
    if matrix.shape != (dim, dim):
        report.add(
            "RPR003",
            f"matrix shape {matrix.shape} does not match "
            f"{len(qubits)}-qubit support (expected {(dim, dim)})",
            locus=locus,
        )
        return
    if not np.allclose(
        matrix.conj().T @ matrix, np.eye(dim), atol=max(atol, 1e-12)
    ):
        deviation = float(
            np.max(np.abs(matrix.conj().T @ matrix - np.eye(dim)))
        )
        report.add(
            "RPR005",
            f"static matrix is not unitary (max |U^dag U - I| = {deviation:.3e})",
            locus=locus,
            hint="a fused product of unitaries must stay unitary; "
            "check the fusion pass inputs",
        )


def _check_op_qubits(
    qubits: Tuple[int, ...], num_qubits: int, locus: str, report: AnalysisReport
) -> bool:
    ok = True
    for qubit in qubits:
        if not 0 <= qubit < num_qubits:
            report.add(
                "RPR001",
                f"qubit {qubit} out of range for plan width {num_qubits}",
                locus=locus,
            )
            ok = False
    if len(set(qubits)) != len(qubits):
        report.add("RPR002", f"duplicate qubit operands {qubits}", locus=locus)
        ok = False
    if not qubits:
        report.add("RPR002", "op has an empty qubit support", locus=locus)
        ok = False
    return ok


# -- gate plans ----------------------------------------------------------------


def verify_gate_plan(
    plan,
    source_circuit: Optional[QuantumCircuit] = None,
    parameters: Optional[Sequence] = None,
    *,
    atol: float = DEFAULT_ATOL,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Verify a :class:`~repro.compiler.ir.GatePlan`.

    With ``source_circuit`` given, the plan's cache key is recomputed from
    content and compared (RPR011).
    """
    report = report if report is not None else AnalysisReport()
    name = "GatePlan"
    num_slots = plan.num_param_ops
    table_lengths = {
        "param_indices": int(plan.param_indices.size),
        "coeffs": int(plan.coeffs.size),
        "offsets": int(plan.offsets.size),
        "slot_gate_names": len(plan.slot_gate_names),
    }
    if len(set(table_lengths.values())) > 1:
        report.add(
            "RPR004",
            f"parameter table arrays disagree in length: {table_lengths}",
            locus=name,
        )
    if plan.param_indices.size and (
        plan.param_indices.min() < 0
        or plan.param_indices.max() >= plan.num_parameters
    ):
        report.add(
            "RPR004",
            f"param_idx outside [0, {plan.num_parameters}) — the affine map "
            "reads past the parameter vector",
            locus=f"{name}.param_indices",
        )
    if plan.coeffs.size and not (
        np.all(np.isfinite(plan.coeffs)) and np.all(np.isfinite(plan.offsets))
    ):
        report.add(
            "RPR004", "non-finite affine coefficients/offsets", locus=name
        )
    used_slots = set()
    for index, op in enumerate(plan.ops):
        locus = f"{name}.ops[{index}]"
        _check_op_qubits(op.qubits, plan.num_qubits, locus, report)
        if op.is_static:
            _check_static_matrix(op.matrix, op.qubits, locus, report, atol)
            continue
        if not 0 <= op.slot < num_slots:
            report.add(
                "RPR004",
                f"parameterized op slot {op.slot} outside table of "
                f"{num_slots} rows",
                locus=locus,
            )
            continue
        if op.slot in used_slots:
            report.add(
                "RPR004",
                f"slot {op.slot} referenced by more than one op",
                locus=locus,
            )
        used_slots.add(op.slot)
        if op.gate_name != plan.slot_gate_names[op.slot]:
            report.add(
                "RPR004",
                f"op gate {op.gate_name!r} disagrees with table row "
                f"{plan.slot_gate_names[op.slot]!r}",
                locus=locus,
            )
    missing_slots = set(range(num_slots)) - used_slots
    if missing_slots:
        report.add(
            "RPR004",
            f"parameter-table rows {sorted(missing_slots)} not owned by any op",
            locus=name,
        )
    if plan.num_parameters:
        referenced = set(int(i) for i in plan.param_indices)
        unused = [
            plan.parameters[i].name
            for i in range(plan.num_parameters)
            if i not in referenced
        ]
        if unused:
            report.add(
                "RPR012",
                f"declared parameters never bound by the plan: {unused}",
                locus=name,
            )
    if source_circuit is not None and plan.key is not None:
        _check_plan_key(plan, source_circuit, parameters, report)
    return report


def _check_plan_key(plan, circuit, parameters, report: AnalysisReport) -> None:
    from repro.compiler.cache import circuit_fingerprint

    expected = "plan:" + circuit_fingerprint(
        circuit, parameters, extra=("fused" if plan.fused else "raw",)
    )
    if plan.key != expected:
        report.add(
            "RPR011",
            f"plan key {plan.key!r} does not match recomputed content key "
            f"{expected!r}",
            locus="GatePlan.key",
            hint="stale cache entry or fingerprint drift; the plan cache "
            "would serve this plan for the wrong circuit",
        )


# -- noise plans ---------------------------------------------------------------


def verify_kraus_site(
    op, locus: str, report: AnalysisReport, *, atol: float = DEFAULT_ATOL
) -> None:
    """CPTP + superoperator/probe consistency of one :class:`ChannelOp`."""
    from repro.compiler.noise_plan import kraus_superoperator

    kraus = np.asarray(op.kraus)
    dim = 2 ** len(op.qubits)
    if kraus.ndim != 3 or kraus.shape[1:] != (dim, dim):
        report.add(
            "RPR003",
            f"Kraus stack shape {kraus.shape} does not match "
            f"{len(op.qubits)}-qubit support (expected (K, {dim}, {dim}))",
            locus=locus,
        )
        return
    total = np.einsum("kij,kil->jl", kraus.conj(), kraus)
    if not np.allclose(total, np.eye(dim), atol=atol):
        deviation = float(np.max(np.abs(total - np.eye(dim))))
        report.add(
            "RPR006",
            f"Kraus stack is not trace preserving "
            f"(max |sum K^dag K - I| = {deviation:.3e})",
            locus=locus,
            hint="channel constructors must satisfy sum_m K_m^dag K_m = I; "
            "see repro.noise.channels.is_cptp",
        )
    if op.superop is not None and not np.allclose(
        op.superop, kraus_superoperator(kraus), atol=atol
    ):
        report.add(
            "RPR007",
            "pre-compiled superoperator disagrees with the Kraus stack",
            locus=locus,
        )
    expected_probes = np.matmul(kraus.conj().transpose(0, 2, 1), kraus)
    if op.probes is not None and not np.allclose(
        op.probes, expected_probes, atol=atol
    ):
        report.add(
            "RPR007",
            "pre-compiled branch probes disagree with the Kraus stack",
            locus=locus,
        )


def verify_noise_plan(
    plan,
    circuit: Optional[QuantumCircuit] = None,
    noise_model=None,
    *,
    atol: float = DEFAULT_ATOL,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Verify a :class:`~repro.compiler.noise_plan.NoisePlan`.

    With ``circuit`` and ``noise_model`` given, the cache key is
    recomputed to prove the noise-model fingerprint is folded in (RPR011).
    """
    from repro.compiler.noise_plan import ChannelOp

    report = report if report is not None else AnalysisReport()
    for index, op in enumerate(plan.ops):
        locus = f"NoisePlan.ops[{index}]"
        _check_op_qubits(op.qubits, plan.num_qubits, locus, report)
        if isinstance(op, ChannelOp):
            verify_kraus_site(op, locus, report, atol=atol)
        elif op.matrix is None:
            report.add(
                "RPR004",
                "noise plans hold only bound (static) unitaries, found a "
                "parameterized op",
                locus=locus,
            )
        else:
            _check_static_matrix(op.matrix, op.qubits, locus, report, atol)
    if plan.key is not None and circuit is not None and noise_model is not None:
        _check_noise_plan_key(plan, circuit, noise_model, report)
    return report


def _check_noise_plan_key(plan, circuit, noise_model, report) -> None:
    from repro.compiler.cache import circuit_fingerprint
    from repro.compiler.noise_plan import noise_fingerprint

    fingerprint = noise_fingerprint(noise_model)
    if fingerprint is None:
        report.add(
            "RPR011",
            "cached noise plan but the noise model exposes no fingerprint",
            locus="NoisePlan.key",
            hint="models without content fingerprints must compile with "
            "cache=False",
        )
        return
    expected = "noise:" + circuit_fingerprint(
        circuit, extra=(fingerprint, "fused" if plan.fused else "raw")
    )
    if plan.key != expected:
        report.add(
            "RPR011",
            f"noise plan key {plan.key!r} does not match recomputed key "
            f"{expected!r} — the model fingerprint is not folded in",
            locus="NoisePlan.key",
        )


# -- device conformance --------------------------------------------------------


def verify_device_compilation(
    compilation,
    device,
    *,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Post-routing conformance of a :class:`DeviceCompilation`.

    Checks native-basis membership (RPR010), coupling-map adjacency of
    every two-qubit gate — mapped back to physical indices through the
    trim bookkeeping — (RPR009) and logical measurement coverage (RPR008).
    """
    report = report if report is not None else AnalysisReport()
    coupling = getattr(device, "coupling_map", device)
    basis = tuple(getattr(device, "basis_gates", ())) or None
    circuit = compilation.circuit
    physical = tuple(compilation.physical_qubits)

    def to_physical(qubit: int) -> int:
        return physical[qubit] if qubit < len(physical) else qubit

    for index, inst in enumerate(circuit):
        if inst.name == "barrier":
            continue
        locus = f"{circuit.name}[{index}]({inst.name})"
        if basis is not None and inst.name not in basis:
            report.add(
                "RPR010",
                f"gate {inst.name!r} outside device basis {basis}",
                locus=locus,
                hint="run TranslateToBasis before lowering onto a device",
            )
        if len(inst.qubits) == 2:
            a, b = (to_physical(q) for q in inst.qubits)
            if not coupling.are_connected(a, b):
                report.add(
                    "RPR009",
                    f"two-qubit gate on uncoupled physical pair ({a}, {b})",
                    locus=locus,
                    hint="routing must insert SWAPs so every 2q gate acts "
                    "on a coupled edge",
                )
    positions = tuple(compilation.logical_positions)
    if positions:
        width = circuit.num_qubits
        if len(set(positions)) != len(positions):
            report.add(
                "RPR008",
                f"duplicate logical measurement positions {positions}",
                locus="DeviceCompilation.logical_positions",
            )
        for logical, position in enumerate(positions):
            if not 0 <= position < width:
                report.add(
                    "RPR008",
                    f"logical qubit {logical} measured at position "
                    f"{position}, outside trimmed width {width}",
                    locus="DeviceCompilation.logical_positions",
                )
    report.extend(verify_circuit(circuit))
    verify_gate_plan(compilation.plan, report=report)
    return report


# -- pipeline integration ------------------------------------------------------


def verify_compilation_unit(unit, *, atol: float = DEFAULT_ATOL) -> AnalysisReport:
    """Verification entry point for the ``VerifyPlan`` pipeline pass.

    Verifies the lowered plan, and — when the unit carries a coupling map
    (device pipeline) — post-routing conformance of the native circuit
    through the trim bookkeeping recorded in the unit metadata.
    """
    from repro.transpiler.basis import NATIVE_GATES

    report = AnalysisReport()
    if unit.plan is not None:
        verify_gate_plan(unit.plan, atol=atol, report=report)
    if unit.coupling is None:
        return report
    physical = tuple(unit.metadata.get("trimmed_physical_qubits", ()))

    def to_physical(qubit: int) -> int:
        return physical[qubit] if qubit < len(physical) else qubit

    for index, inst in enumerate(unit.circuit):
        if inst.name == "barrier":
            continue
        locus = f"{unit.circuit.name}[{index}]({inst.name})"
        if inst.name not in NATIVE_GATES:
            report.add(
                "RPR010",
                f"gate {inst.name!r} outside native basis {NATIVE_GATES}",
                locus=locus,
            )
        if len(inst.qubits) == 2:
            a, b = (to_physical(q) for q in inst.qubits)
            if not unit.coupling.are_connected(a, b):
                report.add(
                    "RPR009",
                    f"two-qubit gate on uncoupled physical pair ({a}, {b})",
                    locus=locus,
                )
    positions = tuple(unit.metadata.get("logical_positions", ()))
    if positions and len(set(positions)) != len(positions):
        report.add(
            "RPR008",
            f"duplicate logical measurement positions {positions}",
            locus="CompilationUnit.logical_positions",
        )
    for logical, position in enumerate(positions):
        if not 0 <= position < unit.circuit.num_qubits:
            report.add(
                "RPR008",
                f"logical qubit {logical} measured at position {position}, "
                f"outside trimmed width {unit.circuit.num_qubits}",
                locus="CompilationUnit.logical_positions",
            )
    return report
