"""Tier 2 — source-level determinism and concurrency lint.

AST-based rules enforcing the seeding discipline the paper's
reproduction depends on (every figure is only comparable because every
run is bit-identically seeded):

* **RPR101 / unseeded-rng** — ``np.random.default_rng()`` with no seed
  (or an explicit ``None``) and any call into the legacy global
  ``np.random.*`` API (``np.random.seed``, ``np.random.rand``, ...).
* **RPR102 / rng-thread** — ``np.random.default_rng(seed)`` called
  directly instead of threading the seed through
  :func:`repro.utils.rng.ensure_rng` / ``derive_rng`` (the canonical
  module ``utils/rng.py`` itself is exempt).
* **RPR103 / set-iteration** — iterating a set (literal, comprehension,
  ``set(...)``/``frozenset(...)`` call, or a local variable bound to
  one) in a seed-critical module (``simulator/``, ``noise/``, ``vqa/``,
  ``fleet/``): hash-order nondeterminism perturbs RNG consumption order.
* **RPR104 / unlocked-cache** — a module-level mutable cache (a
  dict/list/set whose name looks cache-like) mutated inside a function
  without holding a lock: fleet worker threads share module state.
* **RPR105 / direct-result-dump** — ``save_json(...)`` called outside
  the :mod:`repro.store` package (and the serialization module that
  defines it): result payloads belong in the experiment store, where
  they are content-addressed, deduped and queryable, not in loose JSON
  files.
* **RPR106 / direct-timing** — ``time.time()`` / ``time.perf_counter()``
  / ``time.monotonic()`` (and their ``_ns`` variants) called outside
  :mod:`repro.obs`: timing routes through the observability clock
  (``repro.obs.clock`` / ``Stopwatch``) so span timestamps, deadlines
  and reported wall clocks stay mutually comparable.
* **RPR107 / swallow** — a broad handler (bare ``except``, ``except
  Exception``/``BaseException``, or a tuple containing either) whose
  body neither re-raises nor routes the failure into the job lifecycle
  (``mark_failed`` / ``record_failed`` / ``record_failure`` /
  ``record_retry`` / ``fail_job``): under fault injection a swallowed
  exception silently drops work the retry layer would have recovered.

Findings are silenced per line with ``# repro: allow-<slug>`` (on the
offending line or the line directly above).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport

#: Module path fragments in which set iteration perturbs seeded streams.
SEED_CRITICAL_PARTS = ("simulator", "noise", "vqa", "fleet")

#: The canonical RNG module — the one place allowed to build generators.
RNG_MODULE_SUFFIX = ("utils", "rng.py")

#: The module defining save_json (exempt from the direct-dump rule).
SERIALIZATION_MODULE_SUFFIX = ("utils", "serialization.py")

#: Clock-reading functions in the time module (RPR106).
_TIMING_READS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
}

#: np.random attributes that are types/constructors, not stream draws.
_RANDOM_NON_DRAWS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "RandomState",
}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow-([a-z0-9-]+)")

_CACHE_NAME_RE = re.compile(r"(?i)(cache|memo)")

_LOCK_NAME_RE = re.compile(r"(?i)lock")

#: Method calls that mutate a dict/list/set in place.
_MUTATING_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard",
}

#: Calls inside a broad except handler that count as routing the failure
#: into the job lifecycle instead of swallowing it (RPR107).
_FAILURE_SINKS = {
    "mark_failed",
    "record_failed",
    "record_failure",
    "record_retry",
    "fail_job",
}


def _is_broad_handler(type_node: Optional[ast.expr]) -> bool:
    """Bare ``except``, Exception/BaseException, or a tuple holding one."""
    if type_node is None:
        return True
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad_handler(elt) for elt in type_node.elts)
    return _dotted_name(type_node) in ("Exception", "BaseException")


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule slugs (covers the next line too)."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _SUPPRESS_RE.finditer(token.string):
                slug = match.group(1)
                line = token.start[0]
                suppressed.setdefault(line, set()).add(slug)
                suppressed.setdefault(line + 1, set()).add(slug)
    except tokenize.TokenError:
        pass
    return suppressed


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.default_rng`` -> its dotted source text, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _FileLinter(ast.NodeVisitor):
    """One file's worth of rule state."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        suppressed: Dict[int, Set[str]],
        report: AnalysisReport,
        *,
        numpy_aliases: Set[str],
        random_aliases: Set[str],
        default_rng_aliases: Set[str],
        save_json_aliases: Set[str],
        time_aliases: Set[str],
        timing_func_aliases: Set[str],
        seed_critical: bool,
        rng_module: bool,
        store_module: bool,
        obs_module: bool,
    ):
        self.path = path
        self.tree = tree
        self.suppressed = suppressed
        self.report = report
        self.numpy_aliases = numpy_aliases
        self.random_aliases = random_aliases
        self.default_rng_aliases = default_rng_aliases
        self.save_json_aliases = save_json_aliases
        self.time_aliases = time_aliases
        self.timing_func_aliases = timing_func_aliases
        self.seed_critical = seed_critical
        self.rng_module = rng_module
        self.store_module = store_module
        self.obs_module = obs_module
        #: Module-level mutable names that look like caches.
        self.module_caches: Set[str] = set()
        #: Local names currently known to hold a set (per function scope).
        self._set_locals: List[Set[str]] = []
        #: Nesting depth of ``with <lock>:`` blocks.
        self._lock_depth = 0
        self._function_depth = 0

    # -- emission --------------------------------------------------------------

    def emit(self, code: str, message: str, node: ast.AST, hint: str = "") -> None:
        from repro.analysis.diagnostics import CODE_TABLE

        slug = CODE_TABLE[code].slug
        line = getattr(node, "lineno", 0)
        if slug in self.suppressed.get(line, ()):
            self.report.suppressed += 1
            return
        self.report.add(
            code,
            message,
            file=self.path,
            line=line,
            column=getattr(node, "col_offset", None),
            end_line=getattr(node, "end_lineno", None),
            hint=hint or None,
        )

    # -- RNG rules (RPR101 / RPR102) -------------------------------------------

    def _random_namespace(self, func: ast.AST) -> Optional[str]:
        """Return the np.random attribute name if ``func`` lives there."""
        if isinstance(func, ast.Attribute):
            base = _dotted_name(func.value)
            if base is not None and (
                base in self.random_aliases
                or any(
                    base == f"{alias}.random" for alias in self.numpy_aliases
                )
            ):
                return func.attr
        return None

    def _check_rng_call(self, node: ast.Call) -> None:
        attr = self._random_namespace(node.func)
        is_default_rng = attr == "default_rng" or (
            isinstance(node.func, ast.Name)
            and node.func.id in self.default_rng_aliases
        )
        if is_default_rng:
            seed_args = [a for a in node.args if not isinstance(a, ast.Starred)]
            unseeded = not node.args and not node.keywords or (
                len(seed_args) == len(node.args) == 1
                and isinstance(seed_args[0], ast.Constant)
                and seed_args[0].value is None
            )
            if unseeded:
                self.emit(
                    "RPR101",
                    "np.random.default_rng() without a seed — the stream is "
                    "irreproducible",
                    node,
                    hint="thread an explicit seed (or Generator) through "
                    "repro.utils.rng.ensure_rng",
                )
            elif not self.rng_module:
                self.emit(
                    "RPR102",
                    "seed turned into a Generator outside utils/rng.py",
                    node,
                    hint="call repro.utils.rng.ensure_rng(seed) (or "
                    "derive_rng) so seed handling stays in one place",
                )
            return
        if attr is not None and attr not in _RANDOM_NON_DRAWS:
            self.emit(
                "RPR101",
                f"legacy global np.random.{attr}() draws from the shared "
                "unseeded stream",
                node,
                hint="use a Generator from repro.utils.rng.ensure_rng",
            )

    # -- direct-result-dump rule (RPR105) --------------------------------------

    def _check_result_dump(self, node: ast.Call) -> None:
        if self.store_module:
            return
        is_dump = (
            isinstance(node.func, ast.Name)
            and node.func.id in self.save_json_aliases
        ) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "save_json"
        )
        if is_dump:
            self.emit(
                "RPR105",
                "result payload written with save_json instead of the "
                "experiment store",
                node,
                hint="append runs to an ExperimentStore (repro.store) — or "
                "export through repro.store.export — so results stay "
                "content-addressed, deduped and queryable",
            )

    # -- direct-timing rule (RPR106) -------------------------------------------

    def _check_timing_call(self, node: ast.Call) -> None:
        if self.obs_module:
            return
        spelled: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            base = _dotted_name(node.func.value)
            if base in self.time_aliases and node.func.attr in _TIMING_READS:
                spelled = f"{base}.{node.func.attr}"
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in self.timing_func_aliases
        ):
            spelled = node.func.id
        if spelled is not None:
            self.emit(
                "RPR106",
                f"direct clock read {spelled}() outside repro/obs/",
                node,
                hint="route timing through repro.obs "
                "(clock.perf_counter/monotonic/wall_time or Stopwatch) so "
                "every timestamp shares one clock",
            )

    # -- swallowed-exception rule (RPR107) -------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _is_broad_handler(node.type):
            handled = False
            for child in ast.walk(node):
                if isinstance(child, ast.Raise):
                    handled = True
                    break
                if isinstance(child, ast.Call):
                    func = child.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None
                    )
                    if name in _FAILURE_SINKS:
                        handled = True
                        break
            if not handled:
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                self.emit(
                    "RPR107",
                    f"{caught} swallows the exception — no re-raise and no "
                    "failure-sink call in the handler",
                    node,
                    hint="re-raise, narrow the exception type, route the "
                    "failure through mark_failed/record_retry, or annotate "
                    "a deliberate swallow with `# repro: allow-swallow`",
                )
        self.generic_visit(node)

    # -- set-iteration rule (RPR103) -------------------------------------------

    def _is_known_set(self, node: ast.AST) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name) and self._set_locals:
            return node.id in self._set_locals[-1]
        return False

    def _check_iteration(self, iter_node: ast.AST, where: ast.AST) -> None:
        if not self.seed_critical:
            return
        if self._is_known_set(iter_node):
            self.emit(
                "RPR103",
                "iteration over a set in a seed-critical module — element "
                "order follows the hash seed, not program order",
                where,
                hint="iterate sorted(...) (or keep insertion order in a "
                "dict/list) so seeded RNG consumption is stable",
            )

    # -- unlocked-cache rule (RPR104) ------------------------------------------

    def _collect_module_caches(self) -> None:
        for node in self.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set", "OrderedDict")
            )
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and _CACHE_NAME_RE.search(
                    target.id
                ):
                    self.module_caches.add(target.id)

    def _check_cache_mutation(self, name: str, node: ast.AST) -> None:
        if (
            name in self.module_caches
            and self._function_depth > 0
            and self._lock_depth == 0
        ):
            self.emit(
                "RPR104",
                f"module-level cache {name!r} mutated without holding a lock",
                node,
                hint="guard shared caches with `with <lock>:` (fleet "
                "workers share module state across threads) or use "
                "repro.compiler.PlanCache",
            )

    # -- visitors --------------------------------------------------------------

    def run(self) -> None:
        self._collect_module_caches()
        self.visit(self.tree)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_result_dump(node)
        self._check_timing_call(node)
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            if node.func.attr in _MUTATING_METHODS:
                self._check_cache_mutation(node.func.value.id, node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for comp in generators:
            self._check_iteration(comp.iter, comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        self._set_locals.append(set())
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1
        self._set_locals.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._set_locals:
            scope = self._set_locals[-1]
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value):
                        scope.add(target.id)
                    else:
                        scope.discard(target.id)
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._check_cache_mutation(target.value.id, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript) and isinstance(
            node.target.value, ast.Name
        ):
            self._check_cache_mutation(node.target.value.id, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._check_cache_mutation(target.value.id, node)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(
            (name := _dotted_name(item.context_expr)) is not None
            and _LOCK_NAME_RE.search(name)
            or (
                isinstance(item.context_expr, ast.Call)
                and (call_name := _dotted_name(item.context_expr.func))
                is not None
                and _LOCK_NAME_RE.search(call_name)
            )
            for item in node.items
        )
        if holds_lock:
            self._lock_depth += 1
            self.generic_visit(node)
            self._lock_depth -= 1
        else:
            self.generic_visit(node)


def _alias_tables(
    tree: ast.Module,
) -> Tuple[Set[str], Set[str], Set[str], Set[str], Set[str], Set[str]]:
    """Importable spellings of numpy/random/default_rng/save_json/time."""
    numpy_aliases: Set[str] = set()
    random_aliases: Set[str] = set()
    default_rng_aliases: Set[str] = set()
    save_json_aliases: Set[str] = set()
    time_aliases: Set[str] = set()
    timing_func_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or alias.name)
                elif alias.name == "numpy.random":
                    random_aliases.add(alias.asname or alias.name)
                elif alias.name == "time":
                    time_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or alias.name)
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        default_rng_aliases.add(alias.asname or alias.name)
            elif node.module in ("repro.utils", "repro.utils.serialization"):
                for alias in node.names:
                    if alias.name == "save_json":
                        save_json_aliases.add(alias.asname or alias.name)
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in _TIMING_READS:
                        timing_func_aliases.add(alias.asname or alias.name)
    return (
        numpy_aliases,
        random_aliases,
        default_rng_aliases,
        save_json_aliases,
        time_aliases,
        timing_func_aliases,
    )


def is_seed_critical(path: Path) -> bool:
    parts = set(path.parts)
    return any(part in parts for part in SEED_CRITICAL_PARTS)


def is_rng_module(path: Path) -> bool:
    return path.parts[-2:] == RNG_MODULE_SUFFIX


def is_obs_module(path: Path) -> bool:
    """True inside the ``repro/obs/`` package — the clock's one owner."""
    return "obs" in path.parts[:-1]


def is_store_module(path: Path) -> bool:
    """True inside the ``repro/store/`` package (or serialization.py).

    Only a *directory* named ``store`` exempts — ``fleet/store.py`` is a
    file and stays subject to the rule, which is exactly how the fleet's
    payload path was forced through the experiment store.
    """
    return "store" in path.parts[:-1] or (
        path.parts[-2:] == SERIALIZATION_MODULE_SUFFIX
    )


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Lint one source string (the unit the file/path entry points share)."""
    report = report if report is not None else AnalysisReport()
    pure_path = Path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(
            "RPR100",
            f"could not parse: {exc.msg} (line {exc.lineno})",
            file=path,
            line=exc.lineno or 0,
        )
        return report
    (
        numpy_aliases,
        random_aliases,
        default_rng_aliases,
        save_json_aliases,
        time_aliases,
        timing_func_aliases,
    ) = _alias_tables(tree)
    linter = _FileLinter(
        path,
        tree,
        _suppressions(source),
        report,
        numpy_aliases=numpy_aliases or {"np", "numpy"},
        random_aliases=random_aliases,
        default_rng_aliases=default_rng_aliases,
        save_json_aliases=save_json_aliases,
        time_aliases=time_aliases,
        timing_func_aliases=timing_func_aliases,
        seed_critical=is_seed_critical(pure_path),
        rng_module=is_rng_module(pure_path),
        store_module=is_store_module(pure_path),
        obs_module=is_obs_module(pure_path),
    )
    linter.run()
    return report


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str], *, report: Optional[AnalysisReport] = None
) -> AnalysisReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = report if report is not None else AnalysisReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.add(
                "RPR100",
                f"could not read {path}: {exc}",
                file=str(path),
                line=0,
            )
            continue
        lint_source(source, str(path), report=report)
    return report
