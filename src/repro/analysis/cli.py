"""``python -m repro.analysis`` — the static-analysis command line.

Subcommands:

* ``lint <paths...>`` — run the Tier-2 determinism/concurrency linter
  over files or directories (``src/`` in CI);
* ``verify`` — compile circuits and run the Tier-1 IR verifiers;
  ``--all-apps`` sweeps every Table-1 registry app through symbolic,
  device-routed and noisy compilation (with and without a noise model);
* ``codes`` — print the RPR diagnostic-code table.

Exit status is non-zero when any error-severity diagnostic fires (or,
with ``--fail-on warning``, any warning).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import (
    AnalysisReport,
    Severity,
    render_code_table,
)
from repro.analysis.lint import lint_paths
from repro.analysis.verify import (
    verify_circuit,
    verify_device_compilation,
    verify_gate_plan,
    verify_noise_plan,
)


def _verify_app(app_name: str, *, with_noise: bool, report: AnalysisReport) -> None:
    """Compile one registry app every way the runtime does, verifying each."""
    import numpy as np

    from repro.compiler import (
        compile_noise_plan,
        compile_plan,
        transpile_then_compile,
    )
    from repro.experiments.registry import get_app

    app = get_app(app_name)
    ansatz = app.build_ansatz()
    circuit = ansatz.circuit
    verify_circuit(circuit, report=report)

    # Symbolic plan — the VQE hot path's execution form.
    plan = compile_plan(circuit, ansatz.parameters)
    verify_gate_plan(plan, circuit, ansatz.parameters, report=report)

    # Device-routed plan — layout, routing, native basis.
    bound = circuit.bind(np.zeros(ansatz.num_parameters))
    device = app.build_device()
    compilation = transpile_then_compile(bound, device)
    verify_device_compilation(compilation, device, report=report)

    if with_noise:
        model = device.noise_model()
        noise_plan = compile_noise_plan(bound, model)
        verify_noise_plan(noise_plan, bound, model, report=report)


def run_verify(args: argparse.Namespace) -> AnalysisReport:
    from repro.experiments.registry import app_names

    report = AnalysisReport()
    apps: List[str] = list(args.app or [])
    if args.all_apps or not apps:
        apps = app_names()
    for name in apps:
        _verify_app(name, with_noise=not args.no_noise, report=report)
    return report


def run_lint(args: argparse.Namespace) -> AnalysisReport:
    return lint_paths(args.paths)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Plan verifier + determinism linter",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="lowest severity that makes the exit status non-zero",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint", help="run the source-level determinism/concurrency linter"
    )
    lint.add_argument("paths", nargs="+", help="files or directories to lint")

    verify = sub.add_parser(
        "verify", help="compile circuits and run the IR verifiers"
    )
    verify.add_argument(
        "--all-apps",
        action="store_true",
        help="sweep every Table-1 registry app (the default when no --app "
        "is given)",
    )
    verify.add_argument(
        "--app",
        action="append",
        help="verify one registry app (repeatable)",
    )
    verify.add_argument(
        "--no-noise",
        action="store_true",
        help="skip the noise-plan (CPTP) verification leg",
    )

    sub.add_parser("codes", help="print the RPR diagnostic-code table")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "codes":
        print(render_code_table())
        return 0

    report = run_lint(args) if args.command == "lint" else run_verify(args)

    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())

    threshold = Severity.WARNING if args.fail_on == "warning" else Severity.ERROR
    failing = any(d.severity >= threshold for d in report)
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
