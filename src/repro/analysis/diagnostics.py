"""The diagnostics framework shared by every analyzer tier.

A :class:`Diagnostic` is one finding: a stable ``RPR0xx``/``RPR1xx`` code,
a severity, a location (either a file/line/column span for source lint or
an IR locus like ``"NoisePlan.ops[3]"`` for plan verification), a message
and an optional fix hint. :class:`AnalysisReport` aggregates them and
renders either a human-readable text listing or machine-readable JSON —
the CLI, the ``VerifyPlan`` compiler pass and the test suite all consume
the same report object.

Codes are registered centrally in :data:`CODE_TABLE` so the README table,
the CLI ``codes`` subcommand and the analyzers cannot drift apart.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by increasing urgency."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class CodeSpec:
    """Registry entry for one diagnostic code."""

    code: str
    slug: str
    severity: Severity
    summary: str


#: Every diagnostic code the subsystem can emit. ``slug`` doubles as the
#: lint suppression name (``# repro: allow-<slug>``).
CODE_TABLE: Dict[str, CodeSpec] = {
    spec.code: spec
    for spec in [
        # -- Tier 1: IR verifiers (RPR0xx) ---------------------------------
        CodeSpec("RPR001", "qubit-bounds", Severity.ERROR,
                 "qubit operand out of range for the circuit/plan width"),
        CodeSpec("RPR002", "operand-arity", Severity.ERROR,
                 "duplicate qubit operands or wrong operand count for a gate"),
        CodeSpec("RPR003", "matrix-shape", Severity.ERROR,
                 "op matrix/Kraus stack shape inconsistent with its support"),
        CodeSpec("RPR004", "param-binding", Severity.ERROR,
                 "parameter table incomplete or inconsistent (slot/index "
                 "out of range, shape mismatch, non-finite affine map)"),
        CodeSpec("RPR005", "non-unitary", Severity.ERROR,
                 "static (possibly fused) matrix is not unitary"),
        CodeSpec("RPR006", "non-cptp", Severity.ERROR,
                 "Kraus stack violates trace preservation (sum K^dag K != I)"),
        CodeSpec("RPR007", "superop-mismatch", Severity.ERROR,
                 "pre-compiled superoperator/probes disagree with the Kraus stack"),
        CodeSpec("RPR008", "measurement-coverage", Severity.ERROR,
                 "logical measurement positions missing, duplicated or out of range"),
        CodeSpec("RPR009", "coupling-violation", Severity.ERROR,
                 "two-qubit gate on an uncoupled physical pair after routing"),
        CodeSpec("RPR010", "non-basis-gate", Severity.ERROR,
                 "gate outside the device basis after native translation"),
        CodeSpec("RPR011", "cache-key", Severity.ERROR,
                 "plan cache key does not match its content "
                 "(noise fingerprint not folded in)"),
        CodeSpec("RPR012", "unused-parameter", Severity.WARNING,
                 "declared parameter never referenced by the plan's affine map"),
        # -- Tier 2: source-level determinism lint (RPR1xx) -----------------
        CodeSpec("RPR100", "parse-error", Severity.WARNING,
                 "source file could not be read or parsed"),
        CodeSpec("RPR101", "unseeded-rng", Severity.ERROR,
                 "unseeded np.random.default_rng() or legacy global "
                 "np.random.* API"),
        CodeSpec("RPR102", "rng-thread", Severity.ERROR,
                 "RNG built directly from a seed instead of threading it "
                 "through repro.utils.rng.ensure_rng/derive_rng"),
        CodeSpec("RPR103", "set-iteration", Severity.ERROR,
                 "iteration over a set in a seed-critical module "
                 "(hash-order nondeterminism)"),
        CodeSpec("RPR104", "unlocked-cache", Severity.ERROR,
                 "module-level mutable cache mutated outside a lock"),
        CodeSpec("RPR105", "direct-result-dump", Severity.ERROR,
                 "result payload written with save_json outside repro/store/ "
                 "(bypasses the experiment store)"),
        CodeSpec("RPR106", "direct-timing", Severity.ERROR,
                 "direct time.time()/perf_counter()/monotonic() call outside "
                 "repro/obs/ (bypasses the observability clock)"),
        CodeSpec("RPR107", "swallow", Severity.ERROR,
                 "broad except swallows the exception without re-raising or "
                 "failing the job (faults vanish instead of retrying)"),
    ]
}

#: Reverse slug -> code lookup (suppression comments name the slug).
SLUG_TO_CODE: Dict[str, str] = {spec.slug: spec.code for spec in CODE_TABLE.values()}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding with a stable code and a location."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    #: Source file for lint findings; ``None`` for IR verification.
    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    end_line: Optional[int] = None
    #: IR locus for verifier findings, e.g. ``"GatePlan.ops[4]"``.
    locus: Optional[str] = None
    hint: Optional[str] = None

    @property
    def slug(self) -> str:
        spec = CODE_TABLE.get(self.code)
        return spec.slug if spec else self.code.lower()

    def location(self) -> str:
        """Human-readable location prefix."""
        if self.file is not None:
            parts = str(self.file)
            if self.line is not None:
                parts += f":{self.line}"
                if self.column is not None:
                    parts += f":{self.column}"
            return parts
        return self.locus or "<unknown>"

    def render(self) -> str:
        text = f"{self.location()}: {self.severity}: {self.code} [{self.slug}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "slug": self.slug,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("file", "line", "column", "end_line", "locus", "hint"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


def make_diagnostic(code: str, message: str, **kwargs) -> Diagnostic:
    """Build a diagnostic with the registry's default severity for ``code``."""
    spec = CODE_TABLE.get(code)
    if spec is None:
        raise KeyError(f"unknown diagnostic code {code!r}")
    kwargs.setdefault("severity", spec.severity)
    return Diagnostic(code=code, message=message, **kwargs)


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics plus render/aggregate helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: How many findings suppression comments silenced (lint only).
    suppressed: int = 0

    def add(self, code: str, message: str, **kwargs) -> Diagnostic:
        diagnostic = make_diagnostic(code, message, **kwargs)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        return self

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            key = str(diagnostic.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def render_text(self, *, min_severity: Severity = Severity.INFO) -> str:
        """The CLI's human-readable listing, most severe first."""
        shown = [d for d in self.diagnostics if d.severity >= min_severity]
        lines = [d.render() for d in sorted(
            shown, key=lambda d: (-int(d.severity), d.file or "", d.line or 0)
        )]
        counts = self.counts()
        summary = ", ".join(
            f"{counts[name]} {name}{'s' if counts[name] != 1 else ''}"
            for name in ("error", "warning", "info")
            if counts.get(name)
        ) or "no findings"
        if self.suppressed:
            summary += f" ({self.suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "ok": not self.has_errors,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def merge_reports(reports: Iterable[AnalysisReport]) -> AnalysisReport:
    merged = AnalysisReport()
    for report in reports:
        merged.extend(report)
    return merged


def render_code_table() -> str:
    """The ``python -m repro.analysis codes`` listing (mirrors the README)."""
    rows = [
        f"{spec.code}  {spec.slug:<22} {str(spec.severity):<8} {spec.summary}"
        for spec in CODE_TABLE.values()
    ]
    header = f"{'code':<7} {'slug':<22} {'severity':<8} summary"
    return "\n".join([header] + rows)
