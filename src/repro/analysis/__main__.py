"""Entry point for ``python -m repro.analysis``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. `... codes | head`
        sys.stderr.close()
        code = 0
    sys.exit(code)
