"""Jordan-Wigner mapping and Fock-space Hamiltonian assembly.

Spin orbitals map to qubits as ``index = 2 * spatial + spin`` (interleaved,
spin alpha = 0). Occupation uses ``|1>`` = occupied, with qubit 0 as the
first tensor axis, consistent with the rest of the library.

The second-quantized Hamiltonian

``H = sum_ij h_ij a+_i a_j + 1/2 sum_ijkl <ij|kl> a+_i a+_j a_l a_k``

is assembled directly as a dense Fock-space matrix from JW ladder-operator
matrices, then Pauli-decomposed. For the minimal-basis systems targeted
here (<= 4 spin orbitals) this is both exact and fast, and it sidesteps a
hand-rolled fermionic normal-ordering engine as a possible bug source.
"""

from __future__ import annotations

from functools import lru_cache
import numpy as np

_I2 = np.eye(2, dtype=complex)
_Z = np.diag([1.0, -1.0]).astype(complex)
# sigma^- annihilates |1> (occupied): |0><1|.
_LOWER = np.array([[0, 1], [0, 0]], dtype=complex)


@lru_cache(maxsize=None)
def annihilation_operator(index: int, num_modes: int) -> np.ndarray:
    """Dense JW annihilation operator ``a_index`` on ``num_modes`` qubits."""
    if not 0 <= index < num_modes:
        raise ValueError("mode index out of range")
    matrix = np.array([[1.0 + 0j]])
    for mode in range(num_modes):
        if mode < index:
            factor = _Z
        elif mode == index:
            factor = _LOWER
        else:
            factor = _I2
        matrix = np.kron(matrix, factor)
    return matrix


def creation_operator(index: int, num_modes: int) -> np.ndarray:
    """Dense JW creation operator ``a+_index``."""
    return annihilation_operator(index, num_modes).conj().T


def number_operator(num_modes: int) -> np.ndarray:
    """Total particle-number operator ``sum_i a+_i a_i``."""
    total = np.zeros((2**num_modes, 2**num_modes), dtype=complex)
    for mode in range(num_modes):
        a = annihilation_operator(mode, num_modes)
        total += a.conj().T @ a
    return total


def molecular_hamiltonian_matrix(
    hcore_mo: np.ndarray,
    eri_mo: np.ndarray,
    nuclear_repulsion: float = 0.0,
) -> np.ndarray:
    """Fock-space matrix of the molecular Hamiltonian.

    ``hcore_mo`` is the one-body MO integral matrix; ``eri_mo`` the MO
    two-electron tensor in chemists' notation ``(pq|rs)``. Spin is added
    here: ``<ij|kl> = (p_i p_k | p_j p_l) delta(s_i,s_k) delta(s_j,s_l)``.
    """
    num_spatial = hcore_mo.shape[0]
    num_modes = 2 * num_spatial
    dim = 2**num_modes
    hamiltonian = np.zeros((dim, dim), dtype=complex)

    creators = [creation_operator(i, num_modes) for i in range(num_modes)]
    annihilators = [annihilation_operator(i, num_modes) for i in range(num_modes)]

    def spatial(index: int) -> int:
        return index // 2

    def spin(index: int) -> int:
        return index % 2

    # One-body part.
    for i in range(num_modes):
        for j in range(num_modes):
            if spin(i) != spin(j):
                continue
            coefficient = hcore_mo[spatial(i), spatial(j)]
            if abs(coefficient) < 1e-14:
                continue
            hamiltonian += coefficient * (creators[i] @ annihilators[j])

    # Two-body part (physicists' ordering a+_i a+_j a_l a_k).
    for i in range(num_modes):
        for j in range(num_modes):
            for k in range(num_modes):
                for m in range(num_modes):
                    if spin(i) != spin(k) or spin(j) != spin(m):
                        continue
                    coefficient = eri_mo[
                        spatial(i), spatial(k), spatial(j), spatial(m)
                    ]
                    if abs(coefficient) < 1e-14:
                        continue
                    hamiltonian += (
                        0.5
                        * coefficient
                        * (
                            creators[i]
                            @ creators[j]
                            @ annihilators[m]
                            @ annihilators[k]
                        )
                    )

    hamiltonian += nuclear_repulsion * np.eye(dim)
    return hamiltonian


def sector_ground_energy(
    hamiltonian: np.ndarray, num_particles: int, num_modes: int
) -> float:
    """Lowest eigenvalue within a fixed particle-number sector."""
    # Popcount of each basis index gives the particle number (bit i of the
    # index corresponds to mode i because qubit 0 is the leading kron factor;
    # popcount is basis-order independent anyway).
    counts = np.array([bin(i).count("1") for i in range(2**num_modes)])
    mask = counts == num_particles
    block = hamiltonian[np.ix_(mask, mask)]
    return float(np.linalg.eigvalsh(block)[0])
