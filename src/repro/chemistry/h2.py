"""The H2 molecule as a 4-qubit VQE problem (paper Fig. 18).

For each H-H bond length this module runs the full from-scratch pipeline:
STO-3G integrals -> RHF -> MO integrals -> Jordan-Wigner Fock matrix ->
Pauli decomposition, and records ground-truth energies (FCI within the
minimal basis via exact diagonalization).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.chemistry.basis import angstrom_to_bohr, hydrogen_sto3g
from repro.chemistry.hartree_fock import restricted_hartree_fock
from repro.chemistry.jordan_wigner import (
    molecular_hamiltonian_matrix,
    sector_ground_energy,
)
from repro.operators.decompose import pauli_decompose
from repro.operators.pauli_sum import PauliSum
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class H2Problem:
    """Everything Fig. 18 needs for one bond length."""

    bond_length_angstrom: float
    hamiltonian: PauliSum
    hf_energy: float
    fci_energy: float
    nuclear_repulsion: float

    @property
    def num_qubits(self) -> int:
        return self.hamiltonian.num_qubits

    @property
    def correlation_energy(self) -> float:
        return self.fci_energy - self.hf_energy


@lru_cache(maxsize=64)
def h2_problem(bond_length_angstrom: float) -> H2Problem:
    """Build the 4-qubit H2 problem at a bond length given in Angstrom."""
    if bond_length_angstrom <= 0:
        raise ValueError("bond length must be positive")
    separation = angstrom_to_bohr(bond_length_angstrom)
    nuclei = [(1.0, (0.0, 0.0, 0.0)), (1.0, (0.0, 0.0, separation))]
    basis = [hydrogen_sto3g(position) for _, position in nuclei]

    scf = restricted_hartree_fock(basis, nuclei, num_electrons=2)
    matrix = molecular_hamiltonian_matrix(
        scf.hcore_mo, scf.eri_mo, scf.nuclear_repulsion
    )
    hamiltonian = pauli_decompose(matrix, tol=1e-10)
    fci = sector_ground_energy(matrix, num_particles=2, num_modes=4)
    return H2Problem(
        bond_length_angstrom=float(bond_length_angstrom),
        hamiltonian=hamiltonian,
        hf_energy=float(scf.energy),
        fci_energy=fci,
        nuclear_repulsion=float(scf.nuclear_repulsion),
    )


def h2_hamiltonian(bond_length_angstrom: float) -> PauliSum:
    """The 4-qubit H2 Hamiltonian at the given bond length."""
    return h2_problem(bond_length_angstrom).hamiltonian


def h2_hf_initial_point(ansatz, seed=None, jitter: float = 0.03) -> np.ndarray:
    """An HF-informed starting point for the 4-qubit RealAmplitudes ansatz.

    Sets the first RY layer to a pattern of {0, pi} angles chosen so that,
    after propagating through all ``reps`` linear CX entanglement chains
    (which act linearly over GF(2) on computational-basis bits), the
    prepared state is exactly the Hartree-Fock determinant ``|1100>``
    (spin orbitals 0 and 1 occupied). Starting VQE there keeps the search
    in the 2-electron sector's basin instead of the vacuum's — standard
    practice for molecular VQE.
    """
    if ansatz.num_qubits != 4:
        raise ValueError("the HF point is defined for the 4-qubit H2 ansatz")
    reps = getattr(ansatz, "reps", 0)

    def chain(bits):
        out = list(bits)
        for i in range(3):
            out[i + 1] ^= out[i]
        return out

    target = [1, 1, 0, 0]
    start = None
    for mask in range(16):
        bits = [(mask >> i) & 1 for i in range(4)]
        state = list(bits)
        for _ in range(reps):
            state = chain(state)
        if state == target:
            start = bits
            break
    if start is None:  # pragma: no cover - the chain is invertible
        raise RuntimeError("no first-layer pattern reaches the HF state")

    rng = ensure_rng(seed)
    theta = rng.normal(0.0, jitter, ansatz.num_parameters)
    for qubit, bit in enumerate(start):
        if bit:
            theta[qubit] += np.pi
    return theta


def dissociation_bond_lengths(
    start: float = 0.4, stop: float = 2.0, count: int = 10
) -> np.ndarray:
    """The bond-length grid used by the paper's Fig. 18 (0.4-2.0 A, 10 pts)."""
    if count < 2:
        raise ValueError("need at least two points")
    return np.linspace(start, stop, count)
