"""Restricted Hartree-Fock SCF for closed-shell molecules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.linalg import eigh

from repro.chemistry.basis import ContractedGaussian
from repro.chemistry.integrals import (
    electron_repulsion_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    nuclear_repulsion_energy,
    overlap_matrix,
)


@dataclass(frozen=True)
class HartreeFockResult:
    """Converged SCF data in both AO and MO bases."""

    energy: float
    nuclear_repulsion: float
    mo_coefficients: np.ndarray
    orbital_energies: np.ndarray
    hcore_mo: np.ndarray
    eri_mo: np.ndarray
    num_electrons: int
    iterations: int

    @property
    def electronic_energy(self) -> float:
        return self.energy - self.nuclear_repulsion

    @property
    def num_orbitals(self) -> int:
        return self.mo_coefficients.shape[1]

    @property
    def num_spin_orbitals(self) -> int:
        return 2 * self.num_orbitals


def _transform_eri(eri_ao: np.ndarray, c: np.ndarray) -> np.ndarray:
    """AO -> MO transformation of the two-electron tensor, (pq|rs)."""
    return np.einsum(
        "pi,qj,pqrs,rk,sl->ijkl", c, c, eri_ao, c, c, optimize=True
    )


def restricted_hartree_fock(
    basis: Sequence[ContractedGaussian],
    nuclei: Sequence[Tuple[float, Tuple[float, float, float]]],
    num_electrons: int,
    max_iterations: int = 200,
    convergence: float = 1e-10,
) -> HartreeFockResult:
    """Solve the RHF equations by fixed-point SCF iteration.

    Uses symmetric (Lowdin) orthogonalization and simple density damping
    for robustness. Returns MO-basis integrals ready for second
    quantization.
    """
    if num_electrons % 2 != 0:
        raise ValueError("RHF requires an even electron count")
    num_occupied = num_electrons // 2

    s = overlap_matrix(basis)
    hcore = kinetic_matrix(basis) + nuclear_attraction_matrix(basis, nuclei)
    eri = electron_repulsion_tensor(basis)
    e_nuc = nuclear_repulsion_energy(nuclei)

    # Lowdin orthogonalization: X = S^{-1/2}.
    s_eigvals, s_eigvecs = eigh(s)
    if np.min(s_eigvals) < 1e-10:
        raise ValueError("overlap matrix is near-singular")
    x = s_eigvecs @ np.diag(s_eigvals**-0.5) @ s_eigvecs.T

    density = np.zeros_like(s)
    energy_old = 0.0
    coefficients = np.zeros_like(s)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        coulomb = np.einsum("pqrs,rs->pq", eri, density, optimize=True)
        exchange = np.einsum("prqs,rs->pq", eri, density, optimize=True)
        fock = hcore + coulomb - 0.5 * exchange
        fock_ortho = x.T @ fock @ x
        orbital_energies, c_ortho = eigh(fock_ortho)
        coefficients = x @ c_ortho
        occupied = coefficients[:, :num_occupied]
        density_new = 2.0 * occupied @ occupied.T
        energy = 0.5 * np.sum(density_new * (hcore + fock)) + e_nuc
        if abs(energy - energy_old) < convergence and np.max(
            np.abs(density_new - density)
        ) < np.sqrt(convergence):
            density = density_new
            break
        density = 0.7 * density_new + 0.3 * density
        energy_old = energy

    coulomb = np.einsum("pqrs,rs->pq", eri, density, optimize=True)
    exchange = np.einsum("prqs,rs->pq", eri, density, optimize=True)
    fock = hcore + coulomb - 0.5 * exchange
    energy = float(0.5 * np.sum(density * (hcore + fock)) + e_nuc)
    orbital_energies, c_ortho = eigh(x.T @ fock @ x)
    coefficients = x @ c_ortho

    return HartreeFockResult(
        energy=energy,
        nuclear_repulsion=float(e_nuc),
        mo_coefficients=coefficients,
        orbital_energies=orbital_energies,
        hcore_mo=coefficients.T @ hcore @ coefficients,
        eri_mo=_transform_eri(eri, coefficients),
        num_electrons=num_electrons,
        iterations=iterations,
    )
