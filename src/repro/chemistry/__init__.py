"""Minimal-basis quantum chemistry, built from scratch.

Provides everything the H2 dissociation experiment (paper Fig. 18) needs:
STO-3G Gaussian integrals (overlap, kinetic, nuclear attraction, electron
repulsion via the Boys function), restricted Hartree-Fock SCF, the MO-basis
integral transformation, and a Jordan-Wigner mapping of the second-
quantized Hamiltonian to a qubit :class:`~repro.operators.PauliSum`.
"""

from repro.chemistry.basis import STO3G_H_EXPONENTS, ContractedGaussian, hydrogen_sto3g
from repro.chemistry.integrals import (
    boys_f0,
    electron_repulsion_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    overlap_matrix,
)
from repro.chemistry.hartree_fock import HartreeFockResult, restricted_hartree_fock
from repro.chemistry.jordan_wigner import (
    annihilation_operator,
    creation_operator,
    molecular_hamiltonian_matrix,
)
from repro.chemistry.h2 import H2Problem, h2_hamiltonian, h2_problem

__all__ = [
    "STO3G_H_EXPONENTS",
    "ContractedGaussian",
    "hydrogen_sto3g",
    "boys_f0",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_attraction_matrix",
    "electron_repulsion_tensor",
    "HartreeFockResult",
    "restricted_hartree_fock",
    "creation_operator",
    "annihilation_operator",
    "molecular_hamiltonian_matrix",
    "H2Problem",
    "h2_hamiltonian",
    "h2_problem",
]
