"""Gaussian basis sets (STO-3G for hydrogen).

An s-type contracted Gaussian is a fixed linear combination of primitive
Gaussians ``g(r) = N exp(-alpha |r - R|^2)`` with normalization
``N = (2 alpha / pi)^{3/4}``. STO-3G fits a Slater 1s orbital with three
primitives; the standard hydrogen exponents below already include the
zeta = 1.24 scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

# Standard STO-3G hydrogen 1s parameters (Szabo & Ostlund, Table 3.8).
STO3G_H_EXPONENTS: Tuple[float, float, float] = (
    3.42525091,
    0.62391373,
    0.16885540,
)
STO3G_H_COEFFICIENTS: Tuple[float, float, float] = (
    0.15432897,
    0.53532814,
    0.44463454,
)


@dataclass(frozen=True)
class ContractedGaussian:
    """An s-type contracted Gaussian basis function centred at ``center``."""

    exponents: Tuple[float, ...]
    coefficients: Tuple[float, ...]
    center: Tuple[float, float, float]

    def __post_init__(self) -> None:
        if len(self.exponents) != len(self.coefficients):
            raise ValueError("exponents and coefficients must align")
        if len(self.exponents) == 0:
            raise ValueError("need at least one primitive")

    @property
    def num_primitives(self) -> int:
        return len(self.exponents)

    def primitive_norms(self) -> np.ndarray:
        """Per-primitive normalization constants (2a/pi)^{3/4}."""
        alphas = np.asarray(self.exponents)
        return (2.0 * alphas / np.pi) ** 0.75

    def center_array(self) -> np.ndarray:
        return np.asarray(self.center, dtype=float)


def hydrogen_sto3g(center: Tuple[float, float, float]) -> ContractedGaussian:
    """The STO-3G 1s basis function for a hydrogen atom at ``center``.

    Coordinates are in Bohr (atomic units) throughout the chemistry stack.
    """
    return ContractedGaussian(
        exponents=STO3G_H_EXPONENTS,
        coefficients=STO3G_H_COEFFICIENTS,
        center=tuple(float(x) for x in center),
    )


ANGSTROM_TO_BOHR = 1.8897259886


def angstrom_to_bohr(value: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return value * ANGSTROM_TO_BOHR
