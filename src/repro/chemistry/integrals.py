"""Molecular integrals over s-type contracted Gaussians.

Closed-form primitive integrals follow Szabo & Ostlund, Appendix A:

* overlap      ``(a|b)``
* kinetic      ``(a|-1/2 grad^2|b)``
* nuclear      ``(a|-Z/|r-Rc||b)`` via the Boys function ``F0``
* repulsion    ``(ab|cd)`` in chemists' notation, also via ``F0``

All lengths in Bohr, energies in Hartree.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.special import erf

from repro.chemistry.basis import ContractedGaussian


def boys_f0(t: np.ndarray) -> np.ndarray:
    """Boys function of order zero, ``F0(t) = (1/2) sqrt(pi/t) erf(sqrt t)``.

    Uses the series limit ``F0(t) -> 1 - t/3`` for tiny arguments to stay
    numerically stable.
    """
    t = np.asarray(t, dtype=float)
    out = np.empty_like(t)
    small = t < 1e-12
    out[small] = 1.0 - t[small] / 3.0
    big = ~small
    sqrt_t = np.sqrt(t[big])
    out[big] = 0.5 * np.sqrt(np.pi) * erf(sqrt_t) / sqrt_t
    return out


def _primitive_overlap(a: float, ra: np.ndarray, b: float, rb: np.ndarray) -> float:
    p = a + b
    diff = ra - rb
    return (np.pi / p) ** 1.5 * np.exp(-a * b / p * diff @ diff)


def _primitive_kinetic(a: float, ra: np.ndarray, b: float, rb: np.ndarray) -> float:
    p = a + b
    mu = a * b / p
    diff = ra - rb
    r2 = float(diff @ diff)
    return mu * (3.0 - 2.0 * mu * r2) * (np.pi / p) ** 1.5 * np.exp(-mu * r2)


def _primitive_nuclear(
    a: float, ra: np.ndarray, b: float, rb: np.ndarray, rc: np.ndarray
) -> float:
    """Attraction integral for unit nuclear charge at ``rc`` (sign positive)."""
    p = a + b
    mu = a * b / p
    diff = ra - rb
    rp = (a * ra + b * rb) / p
    dpc = rp - rc
    t = p * float(dpc @ dpc)
    return (
        2.0
        * np.pi
        / p
        * np.exp(-mu * float(diff @ diff))
        * float(boys_f0(np.array(t)))
    )


def _primitive_eri(
    a: float,
    ra: np.ndarray,
    b: float,
    rb: np.ndarray,
    c: float,
    rc: np.ndarray,
    d: float,
    rd: np.ndarray,
) -> float:
    p = a + b
    q = c + d
    rp = (a * ra + b * rb) / p
    rq = (c * rc + d * rd) / q
    dab = ra - rb
    dcd = rc - rd
    dpq = rp - rq
    t = p * q / (p + q) * float(dpq @ dpq)
    prefactor = 2.0 * np.pi**2.5 / (p * q * np.sqrt(p + q))
    return (
        prefactor
        * np.exp(-a * b / p * float(dab @ dab) - c * d / q * float(dcd @ dcd))
        * float(boys_f0(np.array(t)))
    )


def _contraction_weights(basis: ContractedGaussian) -> np.ndarray:
    """Contraction coefficient times primitive normalization."""
    return np.asarray(basis.coefficients) * basis.primitive_norms()


def overlap_matrix(basis: Sequence[ContractedGaussian]) -> np.ndarray:
    """Overlap matrix ``S`` over contracted functions."""
    n = len(basis)
    s = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            value = 0.0
            wi, wj = _contraction_weights(basis[i]), _contraction_weights(basis[j])
            ri, rj = basis[i].center_array(), basis[j].center_array()
            for a, ca in zip(basis[i].exponents, wi):
                for b, cb in zip(basis[j].exponents, wj):
                    value += ca * cb * _primitive_overlap(a, ri, b, rj)
            s[i, j] = s[j, i] = value
    return s


def kinetic_matrix(basis: Sequence[ContractedGaussian]) -> np.ndarray:
    """Kinetic energy matrix ``T``."""
    n = len(basis)
    t = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            value = 0.0
            wi, wj = _contraction_weights(basis[i]), _contraction_weights(basis[j])
            ri, rj = basis[i].center_array(), basis[j].center_array()
            for a, ca in zip(basis[i].exponents, wi):
                for b, cb in zip(basis[j].exponents, wj):
                    value += ca * cb * _primitive_kinetic(a, ri, b, rj)
            t[i, j] = t[j, i] = value
    return t


def nuclear_attraction_matrix(
    basis: Sequence[ContractedGaussian],
    nuclei: Sequence[Tuple[float, Tuple[float, float, float]]],
) -> np.ndarray:
    """Nuclear attraction matrix ``V`` (negative semidefinite contribution).

    ``nuclei`` is a list of ``(charge, position)`` pairs in Bohr.
    """
    n = len(basis)
    v = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            value = 0.0
            wi, wj = _contraction_weights(basis[i]), _contraction_weights(basis[j])
            ri, rj = basis[i].center_array(), basis[j].center_array()
            for charge, position in nuclei:
                rc = np.asarray(position, dtype=float)
                for a, ca in zip(basis[i].exponents, wi):
                    for b, cb in zip(basis[j].exponents, wj):
                        value -= charge * ca * cb * _primitive_nuclear(a, ri, b, rj, rc)
            v[i, j] = v[j, i] = value
    return v


def electron_repulsion_tensor(basis: Sequence[ContractedGaussian]) -> np.ndarray:
    """Two-electron repulsion integrals ``(ij|kl)`` in chemists' notation."""
    n = len(basis)
    eri = np.zeros((n, n, n, n))
    weights = [_contraction_weights(b) for b in basis]
    centers = [b.center_array() for b in basis]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                for m in range(n):
                    value = 0.0
                    for a, ca in zip(basis[i].exponents, weights[i]):
                        for b, cb in zip(basis[j].exponents, weights[j]):
                            for c, cc in zip(basis[k].exponents, weights[k]):
                                for d, cd in zip(basis[m].exponents, weights[m]):
                                    value += (
                                        ca
                                        * cb
                                        * cc
                                        * cd
                                        * _primitive_eri(
                                            a,
                                            centers[i],
                                            b,
                                            centers[j],
                                            c,
                                            centers[k],
                                            d,
                                            centers[m],
                                        )
                                    )
                    eri[i, j, k, m] = value
    return eri


def nuclear_repulsion_energy(
    nuclei: Sequence[Tuple[float, Tuple[float, float, float]]]
) -> float:
    """Classical nucleus-nucleus Coulomb repulsion."""
    energy = 0.0
    for i in range(len(nuclei)):
        for j in range(i + 1, len(nuclei)):
            zi, ri = nuclei[i]
            zj, rj = nuclei[j]
            distance = np.linalg.norm(np.asarray(ri) - np.asarray(rj))
            if distance <= 0:
                raise ValueError("coincident nuclei")
            energy += zi * zj / distance
    return float(energy)
