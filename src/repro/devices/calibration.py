"""Per-qubit calibration snapshots.

Real IBMQ machines publish calibration data roughly once a day (the paper
notes this coarse granularity is exactly why static noise models miss
transients). A :class:`CalibrationSnapshot` is one such publication;
:meth:`refresh` produces the next day's snapshot with small correlated
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class CalibrationSnapshot:
    """One calibration cycle's worth of device parameters."""

    t1_us: np.ndarray
    t2_us: np.ndarray
    single_qubit_errors: np.ndarray
    two_qubit_errors: np.ndarray
    readout_errors: np.ndarray
    cycle: int = 0

    def __post_init__(self) -> None:
        n = self.t1_us.size
        for name in ("t2_us", "single_qubit_errors", "readout_errors"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} length mismatch")
        if np.any(self.t2_us > 2 * self.t1_us + 1e-9):
            raise ValueError("calibration violates T2 <= 2*T1")

    @property
    def num_qubits(self) -> int:
        return int(self.t1_us.size)

    @classmethod
    def generate(
        cls,
        num_qubits: int,
        num_couplers: int,
        seed: int,
        t1_mean_us: float = 90.0,
        single_error_mean: float = 3e-4,
        two_error_mean: float = 8e-3,
        readout_error_mean: float = 2e-2,
    ) -> "CalibrationSnapshot":
        """Generate a plausible calibration with device-like spread."""
        rng = derive_rng(seed, "calibration")
        t1 = rng.gamma(shape=12.0, scale=t1_mean_us / 12.0, size=num_qubits)
        t2 = np.minimum(
            2.0 * t1, t1 * rng.uniform(0.6, 1.6, size=num_qubits)
        )
        singles = rng.gamma(4.0, single_error_mean / 4.0, size=num_qubits)
        twos = rng.gamma(4.0, two_error_mean / 4.0, size=max(1, num_couplers))
        readout = rng.gamma(4.0, readout_error_mean / 4.0, size=num_qubits)
        return cls(
            t1_us=t1,
            t2_us=t2,
            single_qubit_errors=np.clip(singles, 1e-5, 0.05),
            two_qubit_errors=np.clip(twos, 1e-4, 0.15),
            readout_errors=np.clip(readout, 1e-3, 0.2),
            cycle=0,
        )

    def refresh(self, seed: int) -> "CalibrationSnapshot":
        """The next calibration cycle: each parameter drifts a few percent."""
        rng = derive_rng(seed, f"recal:{self.cycle + 1}")

        def drift(values: np.ndarray, scale: float) -> np.ndarray:
            return values * np.exp(rng.normal(0.0, scale, size=values.shape))

        t1 = drift(self.t1_us, 0.08)
        t2 = np.minimum(2.0 * t1, drift(self.t2_us, 0.08))
        return CalibrationSnapshot(
            t1_us=t1,
            t2_us=t2,
            single_qubit_errors=np.clip(
                drift(self.single_qubit_errors, 0.10), 1e-5, 0.05
            ),
            two_qubit_errors=np.clip(drift(self.two_qubit_errors, 0.10), 1e-4, 0.15),
            readout_errors=np.clip(drift(self.readout_errors, 0.10), 1e-3, 0.2),
            cycle=self.cycle + 1,
        )

    def mean_two_qubit_error(self) -> float:
        return float(np.mean(self.two_qubit_errors))

    def mean_single_qubit_error(self) -> float:
        return float(np.mean(self.single_qubit_errors))
