"""The device model tying together connectivity, calibration and
transient behaviour."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.calibration import CalibrationSnapshot
from repro.devices.coupling import CouplingMap
from repro.noise.noise_model import NoiseModel
from repro.noise.readout import ReadoutError
from repro.noise.transient.trace import TransientTrace
from repro.noise.transient.trace_generator import (
    TransientProfile,
    generate_trace,
)


@dataclass
class DeviceModel:
    """A fake quantum machine.

    Combines a coupling map, a calibration snapshot (the "static" noise the
    paper's baseline techniques see) and a transient profile (the dynamic
    part QISMET targets).
    """

    name: str
    coupling_map: CouplingMap
    calibration: CalibrationSnapshot
    transient_profile: TransientProfile
    basis_gates: tuple = ("rz", "sx", "x", "cx")

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    def noise_model(self) -> NoiseModel:
        """Static noise model from current calibration averages."""
        return NoiseModel(
            single_qubit_error=self.calibration.mean_single_qubit_error(),
            two_qubit_error=self.calibration.mean_two_qubit_error(),
        )

    def readout_error(self) -> ReadoutError:
        probs = self.calibration.readout_errors
        return ReadoutError(probs, probs)

    def transient_trace(
        self, length: int, seed: int, trial: str = "v1",
        magnitude_scale: float = 1.0,
    ) -> TransientTrace:
        """Generate this machine's transient trace for a run."""
        profile = self.transient_profile
        if magnitude_scale != 1.0:
            profile = profile.scaled(magnitude_scale)
        return generate_trace(
            profile, length, seed, machine=self.name, trial=trial
        )

    def recalibrate(self, seed: int) -> "DeviceModel":
        """A new device model after one calibration cycle."""
        return DeviceModel(
            name=self.name,
            coupling_map=self.coupling_map,
            calibration=self.calibration.refresh(seed),
            transient_profile=self.transient_profile,
            basis_gates=self.basis_gates,
        )

    def mean_t1_us(self) -> float:
        return float(np.mean(self.calibration.t1_us))

    def __repr__(self) -> str:
        return (
            f"DeviceModel({self.name!r}, qubits={self.num_qubits}, "
            f"cycle={self.calibration.cycle})"
        )
