"""Fake-device models standing in for the paper's IBMQ machines."""

from repro.devices.coupling import CouplingMap
from repro.devices.calibration import CalibrationSnapshot
from repro.devices.device import DeviceModel
from repro.devices.ibmq_fake import available_machines, get_device

__all__ = [
    "CouplingMap",
    "CalibrationSnapshot",
    "DeviceModel",
    "available_machines",
    "get_device",
]
