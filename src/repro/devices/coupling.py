"""Qubit connectivity graphs."""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx


class CouplingMap:
    """An undirected qubit-connectivity graph with routing helpers."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]]):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        graph = nx.Graph()
        graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise ValueError("self-loops are not allowed")
            graph.add_edge(a, b)
        self.graph = graph

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return sorted((min(a, b), max(a, b)) for a, b in self.graph.edges())

    def are_connected(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        return int(nx.shortest_path_length(self.graph, a, b))

    def shortest_path(self, a: int, b: int) -> List[int]:
        return list(nx.shortest_path(self.graph, a, b))

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self.graph.neighbors(qubit))

    def is_connected_graph(self) -> bool:
        return nx.is_connected(self.graph)

    def best_linear_chain(self, length: int) -> List[int]:
        """Find a simple path of ``length`` qubits (for linear ansatz layout).

        Greedy DFS over simple paths; raises if the device cannot host a
        chain that long.
        """
        if length < 1:
            raise ValueError("length must be >= 1")
        if length == 1:
            return [0]
        for start in range(self.num_qubits):
            path = self._extend_chain([start], length)
            if path is not None:
                return path
        raise ValueError(f"no simple path of length {length} in coupling map")

    def _extend_chain(self, path: List[int], length: int):
        if len(path) == length:
            return path
        for neighbor in self.neighbors(path[-1]):
            if neighbor in path:
                continue
            result = self._extend_chain(path + [neighbor], length)
            if result is not None:
                return result
        return None

    def __repr__(self) -> str:
        return f"CouplingMap(qubits={self.num_qubits}, edges={len(self.edges)})"


def line_map(num_qubits: int) -> CouplingMap:
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring_map(num_qubits: int) -> CouplingMap:
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid_map(rows: int, cols: int) -> CouplingMap:
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return CouplingMap(rows * cols, edges)


# IBM heavy-hex style layouts. These reproduce the real devices'
# connectivity (7-qubit Falcon r5.11H "H" shape; 16-qubit Falcon r4P
# Guadalupe; 27-qubit Falcon r4/r5 used for Toronto/Sydney/Mumbai/Cairo).

FALCON_7Q_EDGES = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]

FALCON_16Q_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 5), (4, 1), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14),
]

FALCON_27Q_EDGES = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]


def falcon_map(num_qubits: int) -> CouplingMap:
    """Heavy-hex coupling map for the supported Falcon sizes."""
    if num_qubits == 7:
        return CouplingMap(7, FALCON_7Q_EDGES)
    if num_qubits == 16:
        return CouplingMap(16, FALCON_16Q_EDGES)
    if num_qubits == 27:
        return CouplingMap(27, FALCON_27Q_EDGES)
    raise ValueError("falcon maps are defined for 7, 16 and 27 qubits")
