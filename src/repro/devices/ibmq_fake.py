"""Fake versions of the IBMQ machines used in the paper.

Connectivity matches the real devices (heavy-hex Falcon layouts);
calibration values are generated with per-machine error scales chosen so
relative machine quality follows the paper's observations; transient
profiles come from ``repro.noise.transient.trace_generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.devices.calibration import CalibrationSnapshot
from repro.devices.coupling import falcon_map
from repro.devices.device import DeviceModel
from repro.noise.transient.trace_generator import profile_for_machine
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class _MachineSpec:
    name: str
    num_qubits: int
    t1_mean_us: float
    single_error_mean: float
    two_error_mean: float
    readout_error_mean: float


_SPECS: Dict[str, _MachineSpec] = {
    spec.name: spec
    for spec in [
        _MachineSpec("guadalupe", 16, 95.0, 3.0e-4, 9.0e-3, 2.0e-2),
        _MachineSpec("toronto", 27, 100.0, 3.5e-4, 1.2e-2, 3.0e-2),
        _MachineSpec("sydney", 27, 110.0, 3.0e-4, 1.0e-2, 2.5e-2),
        _MachineSpec("casablanca", 7, 85.0, 4.0e-4, 1.1e-2, 3.0e-2),
        _MachineSpec("jakarta", 7, 120.0, 3.5e-4, 9.5e-3, 2.5e-2),
        _MachineSpec("mumbai", 27, 115.0, 3.0e-4, 8.5e-3, 2.2e-2),
        _MachineSpec("cairo", 27, 100.0, 3.0e-4, 9.0e-3, 2.4e-2),
    ]
}


def available_machines() -> List[str]:
    """Names of all fake machines (all machines used in the paper)."""
    return sorted(_SPECS)


def get_device(name: str, calibration_seed: int = 2023) -> DeviceModel:
    """Build a fake device by machine name (case-insensitive)."""
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown machine {name!r}; known: {available_machines()}")
    spec = _SPECS[key]
    coupling = falcon_map(spec.num_qubits)
    calibration = CalibrationSnapshot.generate(
        num_qubits=spec.num_qubits,
        num_couplers=len(coupling.edges),
        seed=derive_seed(calibration_seed, f"cal:{key}"),
        t1_mean_us=spec.t1_mean_us,
        single_error_mean=spec.single_error_mean,
        two_error_mean=spec.two_error_mean,
        readout_error_mean=spec.readout_error_mean,
    )
    return DeviceModel(
        name=key,
        coupling_map=coupling,
        calibration=calibration,
        transient_profile=profile_for_machine(key),
    )
