"""The VQE energy objective: ansatz + Hamiltonian -> E(theta)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ansatz.base import Ansatz
from repro.operators.pauli_sum import PauliSum
from repro.simulator.batched import BatchedStatevectorSimulator
from repro.simulator.statevector import StatevectorSimulator

#: Up to this many qubits the Hamiltonian is cached as a dense matrix
#: (one matrix-vector product per evaluation). Above it, densification
#: would cost ``O(4**n)`` memory — 67 MB at 11 qubits, 268 MB at 12 — so
#: evaluation routes through the matrix-free bitmask Pauli path instead
#: (``O(terms * 2**n)`` per evaluation, no large cache).
_DENSE_LIMIT_QUBITS = 10


class EnergyObjective:
    """Exact (transient-free, noise-free) energy evaluation.

    For small systems the Hamiltonian is cached as a dense matrix — built
    *lazily* on first exact evaluation, so constructing an objective for
    sampled (counts-based) estimation stays O(terms) — and each evaluation
    is one circuit simulation plus one matrix-vector product. Larger
    systems use the matrix-free Pauli-application fast path.

    :meth:`batch_energies` evaluates a whole ``(B, P)`` block of parameter
    sets through the batched simulator in one NumPy pass; results match
    serial :meth:`ideal_energy` calls to within floating-point
    reassociation (<= 1e-12 absolute).
    """

    def __init__(self, ansatz: Ansatz, hamiltonian: PauliSum):
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise ValueError(
                f"ansatz acts on {ansatz.num_qubits} qubits but the "
                f"Hamiltonian on {hamiltonian.num_qubits}"
            )
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        #: The compiled (fused, cached) execution form of the ansatz.
        self._plan = ansatz.plan
        self._simulator = StatevectorSimulator(ansatz.num_qubits)
        self._batched_simulator = BatchedStatevectorSimulator(ansatz.num_qubits)
        self._dense: Optional[np.ndarray] = None
        self.evaluations = 0

    @property
    def num_parameters(self) -> int:
        return self.ansatz.num_parameters

    @property
    def num_qubits(self) -> int:
        return self.ansatz.num_qubits

    @property
    def uses_dense_hamiltonian(self) -> bool:
        """Whether exact evaluation uses the dense-matrix cache."""
        return self.num_qubits <= _DENSE_LIMIT_QUBITS

    def _dense_matrix(self) -> np.ndarray:
        """The dense Hamiltonian, built on first use and cached."""
        if self._dense is None:
            self._dense = self.hamiltonian.to_matrix()
        return self._dense

    def statevector(self, theta: np.ndarray) -> np.ndarray:
        state = self._simulator.run_plan(self._plan, theta)
        return state.reshape(-1)

    def ideal_energy(self, theta: np.ndarray) -> float:
        """Exact ``<psi(theta)|H|psi(theta)>``."""
        self.evaluations += 1
        state = self._simulator.run_plan(self._plan, theta)
        psi = state.reshape(-1)
        if self.uses_dense_hamiltonian:
            dense = self._dense_matrix()
            return float(np.real(np.vdot(psi, dense @ psi)))
        return self.hamiltonian.expectation(psi)

    def batch_energies(self, thetas: np.ndarray) -> np.ndarray:
        """Exact energies for a ``(B, P)`` batch of parameter vectors.

        The whole batch runs through the ansatz in one vectorized pass
        (one NumPy contraction per gate instead of ``B``), which is the
        hot-path lever for SPSA pairs, resampled gradients and multi-seed
        populations. ``batch_energies(thetas)[i]`` equals
        ``ideal_energy(thetas[i])`` up to fp reassociation (<= 1e-12).
        """
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected thetas of shape (B, {self.num_parameters}), "
                f"got {thetas.shape}"
            )
        self.evaluations += thetas.shape[0]
        states = self._batched_simulator.run_flat(self._plan, thetas)
        if self.uses_dense_hamiltonian:
            dense = self._dense_matrix()
            # Per-element matvec keeps the reduction order of the serial
            # path (dgemv, not one big dgemm); the simulation is where the
            # batch speedup lives, and at <= 2**10 dims this loop is noise.
            return np.array(
                [float(np.real(np.vdot(psi, dense @ psi))) for psi in states]
            )
        return np.asarray(self.hamiltonian.batch_expectations(states), dtype=float)

    def batch_statevectors(self, thetas: np.ndarray) -> np.ndarray:
        """Flat ``(B, 2**n)`` statevectors for a ``(B, P)`` batch."""
        thetas = np.asarray(thetas, dtype=float)
        return self._batched_simulator.run_flat(self._plan, thetas)

    def __call__(self, theta: np.ndarray) -> float:
        return self.ideal_energy(theta)

    # Characteristics used by static-noise modelling -------------------------

    def gate_counts(self) -> tuple:
        """(single-qubit, two-qubit) gate counts of the ansatz circuit.

        Read from the plan's *pre-fusion* source counts, so static-noise
        survival factors always see the physical circuit regardless of
        how the execution schedule was fused.
        """
        return self._plan.source_gate_counts

    def mixed_state_energy(self) -> float:
        """Energy of the maximally mixed state (identity coefficient)."""
        return self.hamiltonian.maximally_mixed_expectation()

    def initial_point(self, seed=None, scale: float = 0.1) -> np.ndarray:
        return self.ansatz.initial_point(seed=seed, scale=scale)
