"""The VQE energy objective: ansatz + Hamiltonian -> E(theta)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ansatz.base import Ansatz
from repro.operators.pauli_sum import PauliSum
from repro.simulator.statevector import StatevectorSimulator

_DENSE_LIMIT_QUBITS = 12


class EnergyObjective:
    """Exact (transient-free, noise-free) energy evaluation.

    For small systems the Hamiltonian is cached as a dense matrix so each
    evaluation is one circuit simulation plus one matrix-vector product;
    larger systems fall back to per-Pauli-term evaluation.
    """

    def __init__(self, ansatz: Ansatz, hamiltonian: PauliSum):
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise ValueError(
                f"ansatz acts on {ansatz.num_qubits} qubits but the "
                f"Hamiltonian on {hamiltonian.num_qubits}"
            )
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self._simulator = StatevectorSimulator(ansatz.num_qubits)
        self._dense: Optional[np.ndarray] = None
        if ansatz.num_qubits <= _DENSE_LIMIT_QUBITS:
            self._dense = hamiltonian.to_matrix()
        self.evaluations = 0

    @property
    def num_parameters(self) -> int:
        return self.ansatz.num_parameters

    @property
    def num_qubits(self) -> int:
        return self.ansatz.num_qubits

    def statevector(self, theta: np.ndarray) -> np.ndarray:
        state = self._simulator.run_program(self.ansatz.program, theta)
        return state.reshape(-1)

    def ideal_energy(self, theta: np.ndarray) -> float:
        """Exact ``<psi(theta)|H|psi(theta)>``."""
        self.evaluations += 1
        state = self._simulator.run_program(self.ansatz.program, theta)
        if self._dense is not None:
            psi = state.reshape(-1)
            return float(np.real(np.vdot(psi, self._dense @ psi)))
        return self.hamiltonian.expectation(state)

    def __call__(self, theta: np.ndarray) -> float:
        return self.ideal_energy(theta)

    # Characteristics used by static-noise modelling -------------------------

    def gate_counts(self) -> tuple:
        """(single-qubit, two-qubit) gate counts of the ansatz circuit."""
        singles = 0
        twos = 0
        for op in self.ansatz.program.ops:
            if len(op.qubits) == 2:
                twos += 1
            else:
                singles += 1
        return singles, twos

    def mixed_state_energy(self) -> float:
        """Energy of the maximally mixed state (identity coefficient)."""
        return self.hamiltonian.maximally_mixed_expectation()

    def initial_point(self, seed=None, scale: float = 0.1) -> np.ndarray:
        return self.ansatz.initial_point(seed=seed, scale=scale)
