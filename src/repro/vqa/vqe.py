"""The VQE driver.

Per iteration the driver: (1) measures the candidate parameters' energy,
(2) lets the optimizer apply its acceptance rule (blocking), (3) feeds the
outcome back, and (4) asks the optimizer to propose the next candidate.
All objective evaluations — the candidate measurement and the optimizer's
gradient evaluations — go through an *evaluator*:

* :class:`~repro.core.executor.PlainEvaluator` (baseline): one quantum job
  per evaluation, fully exposed to whatever transient hits that job;
* :class:`~repro.core.executor.GuardedEvaluator` (QISMET): every job also
  reruns the previous evaluation's circuit and the controller retries jobs
  whose transient flipped the observed gradient direction (paper Fig. 7-9).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.backends.base import EnergyBackend
from repro.core.controller import QismetController
from repro.core.executor import GuardedEvaluator, PlainEvaluator
from repro.optimizers.base import IterativeOptimizer
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import IterationRecord, VQEResult


class VQE:
    """Variational quantum eigensolver over a job-based backend."""

    def __init__(
        self,
        objective: EnergyObjective,
        backend: EnergyBackend,
        optimizer: IterativeOptimizer,
        controller: Optional[QismetController] = None,
        track_true_energy: bool = True,
    ):
        self.objective = objective
        self.backend = backend
        self.optimizer = optimizer
        self.controller = controller
        self.evaluator: Union[PlainEvaluator, GuardedEvaluator]
        if controller is None:
            self.evaluator = PlainEvaluator(backend)
        else:
            self.evaluator = GuardedEvaluator(backend, controller)
        self.track_true_energy = track_true_energy

    def run(
        self,
        iterations: int,
        theta0: Optional[np.ndarray] = None,
        seed: Optional[int] = None,
        max_jobs: Optional[int] = None,
    ) -> VQEResult:
        """Run the tuning loop for ``iterations`` optimizer steps.

        ``max_jobs`` optionally caps total quantum jobs consumed (machine
        time). Under a job budget, schemes that skip/retry aggressively pay
        for every retry in lost optimizer steps — the fair basis for the
        paper's skipping-threshold studies (Figs. 15 and 19).
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if max_jobs is not None and max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.optimizer.reset()
        self.evaluator.reset()

        theta_current = (
            np.asarray(theta0, dtype=float)
            if theta0 is not None
            else self.objective.initial_point(seed=seed)
        )
        if theta_current.shape != (self.objective.num_parameters,):
            raise ValueError("theta0 has the wrong shape")

        result = VQEResult()
        em_current = self.evaluator.energy(theta_current)
        result.records.append(
            self._record(0, em_current, theta_current, em_current, 0, True, True)
        )

        for index in range(1, iterations):
            if max_jobs is not None and self.backend.job_counter >= max_jobs:
                break
            # The evaluator object itself is the optimizer's evaluate
            # callback: calling it evaluates one point, and evaluators
            # exposing ``.energies`` let SPSA batch its theta+/theta-
            # pairs through the vectorized simulator (GuardedEvaluator is
            # inherently sequential and keeps the per-call path).
            theta_candidate = self.optimizer.propose(theta_current, self.evaluator)
            retries_before = self.evaluator.total_retries
            em_candidate = self.evaluator.energy(theta_candidate)
            retries = self.evaluator.total_retries - retries_before

            optimizer_accepted = self.optimizer.accepts(em_current, em_candidate)
            if optimizer_accepted:
                theta_current = theta_candidate
                em_current = em_candidate
            self.optimizer.feedback(optimizer_accepted, theta_current, em_current)

            result.records.append(
                self._record(
                    index,
                    em_current,
                    theta_current,
                    em_candidate,
                    retries,
                    True,
                    optimizer_accepted,
                )
            )

        result.final_theta = theta_current
        result.total_jobs = self.backend.job_counter
        result.total_circuits = self.backend.total_circuits
        result.total_retries = self.evaluator.total_retries
        if self.controller is not None:
            result.forced_accepts = self.controller.stats.forced_accepts
        return result

    def _record(
        self,
        index: int,
        machine_energy: float,
        theta: np.ndarray,
        candidate_energy: float,
        retries: int,
        controller_accepted: bool,
        optimizer_accepted: bool,
    ) -> IterationRecord:
        if self.controller is not None and self.controller.stats.tm_history:
            tm = self.controller.stats.tm_history[-1]
        else:
            tm = None
        return IterationRecord(
            index=index,
            machine_energy=machine_energy,
            true_energy=(
                self.objective.ideal_energy(theta)
                if self.track_true_energy
                else None
            ),
            candidate_energy=candidate_energy,
            tm=tm,
            gm=None,
            gp=None,
            retries=retries,
            accepted_by_controller=controller_accepted,
            accepted_by_optimizer=optimizer_accepted,
        )
