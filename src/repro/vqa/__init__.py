"""The VQA layer: objectives, the VQE driver and multi-VQE runners."""

from repro.vqa.objective import EnergyObjective
from repro.vqa.result import IterationRecord, VQEResult
from repro.vqa.vqe import VQE
from repro.vqa.multi_vqe import DissociationCurveRunner, PopulationVQE

__all__ = [
    "EnergyObjective",
    "IterationRecord",
    "VQEResult",
    "VQE",
    "DissociationCurveRunner",
    "PopulationVQE",
]
