"""Multi-VQE experiments: dissociation curves (paper Section 7.6).

Estimating a molecule's potential-energy surface requires one VQE per
geometry (one Hamiltonian per bond length). Transients hitting some of
those runs harder than others skew energy *differences* — the quantity
chemistry actually cares about — which is what Fig. 18 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.chemistry.h2 import H2Problem, h2_problem
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import VQEResult
from repro.vqa.vqe import VQE

# Builds a ready-to-run VQE for one bond length's problem.
VQEFactory = Callable[[H2Problem, EnergyObjective, int], VQE]


@dataclass(frozen=True)
class CurvePoint:
    """One bond length's outcome."""

    bond_length: float
    estimated_energy: float
    fci_energy: float
    hf_energy: float
    result: VQEResult

    @property
    def error_vs_fci(self) -> float:
        return self.estimated_energy - self.fci_energy


class DissociationCurveRunner:
    """Runs one VQE per bond length and collects the curve."""

    def __init__(
        self,
        vqe_factory: VQEFactory,
        ansatz_factory: Callable[[int], "object"],
        iterations: int = 300,
        tail_fraction: float = 0.15,
        initial_point_factory: Optional[Callable] = None,
    ):
        self.vqe_factory = vqe_factory
        self.ansatz_factory = ansatz_factory
        self.iterations = iterations
        self.tail_fraction = tail_fraction
        # Called as f(ansatz, seed) -> theta0; defaults to the HF-informed
        # point for 4-qubit problems (molecular-VQE standard practice).
        self.initial_point_factory = initial_point_factory

    def _initial_point(self, ansatz, seed: int):
        if self.initial_point_factory is not None:
            return self.initial_point_factory(ansatz, seed)
        if ansatz.num_qubits == 4:
            from repro.chemistry.h2 import h2_hf_initial_point

            return h2_hf_initial_point(ansatz, seed=seed)
        return ansatz.initial_point(seed=seed)

    def run(
        self,
        bond_lengths: Sequence[float],
        seed: int = 0,
    ) -> List[CurvePoint]:
        points: List[CurvePoint] = []
        for i, bond_length in enumerate(bond_lengths):
            problem = h2_problem(float(bond_length))
            ansatz = self.ansatz_factory(problem.num_qubits)
            objective = EnergyObjective(ansatz, problem.hamiltonian)
            vqe = self.vqe_factory(problem, objective, seed + i)
            theta0 = self._initial_point(ansatz, seed + i)
            result = vqe.run(self.iterations, theta0=theta0)
            estimated = result.tail_true_energy(self.tail_fraction)
            points.append(
                CurvePoint(
                    bond_length=float(bond_length),
                    estimated_energy=estimated,
                    fci_energy=problem.fci_energy,
                    hf_energy=problem.hf_energy,
                    result=result,
                )
            )
        return points


def curve_rms_error(points: Sequence[CurvePoint]) -> float:
    """RMS deviation of the estimated curve from FCI across bond lengths."""
    if not points:
        raise ValueError("empty curve")
    errors = np.array([p.error_vs_fci for p in points])
    return float(np.sqrt(np.mean(errors**2)))


def binding_energy(points: Sequence[CurvePoint]) -> float:
    """Estimated well depth: E(max r) - min E(r) (reaction-rate proxy)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    energies = [p.estimated_energy for p in points]
    return float(energies[-1] - min(energies))
