"""Multi-VQE experiments: dissociation curves and seed populations.

Two multi-run workloads live here:

* :class:`DissociationCurveRunner` — one VQE per molecular geometry
  (paper Section 7.6 / Fig. 18);
* :class:`PopulationVQE` — many *seeds* of the same noise-free VQE run
  in lock step, with every population evaluation (all chains'
  theta+/theta- SPSA pairs, candidates, and tracked true energies)
  batched through :meth:`EnergyObjective.batch_energies` — one
  vectorized simulator pass instead of one circuit per chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.chemistry.h2 import H2Problem, h2_problem
from repro.optimizers.base import IterativeOptimizer
from repro.optimizers.spsa import SPSA
from repro.vqa.objective import EnergyObjective
from repro.vqa.result import IterationRecord, VQEResult
from repro.vqa.vqe import VQE

# Builds a ready-to-run VQE for one bond length's problem.
VQEFactory = Callable[[H2Problem, EnergyObjective, int], VQE]


@dataclass(frozen=True)
class CurvePoint:
    """One bond length's outcome."""

    bond_length: float
    estimated_energy: float
    fci_energy: float
    hf_energy: float
    result: VQEResult

    @property
    def error_vs_fci(self) -> float:
        return self.estimated_energy - self.fci_energy


class DissociationCurveRunner:
    """Runs one VQE per bond length and collects the curve."""

    def __init__(
        self,
        vqe_factory: VQEFactory,
        ansatz_factory: Callable[[int], "object"],
        iterations: int = 300,
        tail_fraction: float = 0.15,
        initial_point_factory: Optional[Callable] = None,
    ):
        self.vqe_factory = vqe_factory
        self.ansatz_factory = ansatz_factory
        self.iterations = iterations
        self.tail_fraction = tail_fraction
        # Called as f(ansatz, seed) -> theta0; defaults to the HF-informed
        # point for 4-qubit problems (molecular-VQE standard practice).
        self.initial_point_factory = initial_point_factory

    def _initial_point(self, ansatz, seed: int):
        if self.initial_point_factory is not None:
            return self.initial_point_factory(ansatz, seed)
        if ansatz.num_qubits == 4:
            from repro.chemistry.h2 import h2_hf_initial_point

            return h2_hf_initial_point(ansatz, seed=seed)
        return ansatz.initial_point(seed=seed)

    def run(
        self,
        bond_lengths: Sequence[float],
        seed: int = 0,
    ) -> List[CurvePoint]:
        points: List[CurvePoint] = []
        for i, bond_length in enumerate(bond_lengths):
            problem = h2_problem(float(bond_length))
            ansatz = self.ansatz_factory(problem.num_qubits)
            objective = EnergyObjective(ansatz, problem.hamiltonian)
            vqe = self.vqe_factory(problem, objective, seed + i)
            theta0 = self._initial_point(ansatz, seed + i)
            result = vqe.run(self.iterations, theta0=theta0)
            estimated = result.tail_true_energy(self.tail_fraction)
            points.append(
                CurvePoint(
                    bond_length=float(bond_length),
                    estimated_energy=estimated,
                    fci_energy=problem.fci_energy,
                    hf_energy=problem.hf_energy,
                    result=result,
                )
            )
        return points


class PopulationVQE:
    """Lock-step multi-seed VQE on the exact (noise-free) objective.

    Runs ``S`` independent plain-SPSA chains simultaneously: per
    iteration, all chains' perturbation pairs go through *one*
    ``batch_energies`` call (``2S`` rows), then all candidates (``S``
    rows), then — when tracking — all true energies (``S`` rows). Each
    chain's outcome is equivalent to a separate
    ``VQE(objective, IdealBackend(objective), SPSA(seed=s))`` run up to
    floating-point reassociation (<= 1e-12; asserted by
    ``tests/test_batched_equivalence.py``).

    Only *plain* first-order SPSA chains are supported: the lock-step
    loop hand-rolls the one-pair gradient step, so optimizers that
    override ``propose`` (resampling, 2SPSA) or the acceptance rule
    (blocking) would silently lose their behavior — :meth:`run` rejects
    them instead.
    """

    def __init__(
        self,
        objective: EnergyObjective,
        spsa_factory: Optional[Callable[[int], SPSA]] = None,
        track_true_energy: bool = True,
    ):
        self.objective = objective
        self.spsa_factory = spsa_factory or (lambda seed: SPSA(seed=seed))
        self.track_true_energy = track_true_energy

    def run(
        self,
        iterations: int,
        seeds: Sequence[int],
        theta0s: Optional[np.ndarray] = None,
    ) -> List[VQEResult]:
        """Run all seeds for ``iterations`` lock-step optimizer steps."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not len(seeds):
            raise ValueError("need at least one seed")
        optimizers = [self.spsa_factory(int(seed)) for seed in seeds]
        for optimizer in optimizers:
            if not isinstance(optimizer, SPSA):
                raise TypeError("PopulationVQE requires SPSA optimizers")
            if type(optimizer).accepts is not IterativeOptimizer.accepts:
                raise TypeError(
                    "PopulationVQE requires always-accepting (plain) SPSA; "
                    f"{type(optimizer).__name__} overrides the acceptance rule"
                )
            if type(optimizer).propose is not SPSA.propose:
                raise TypeError(
                    "PopulationVQE batches the plain one-pair SPSA step; "
                    f"{type(optimizer).__name__} overrides propose() and "
                    "would lose its behavior in lock-step mode"
                )
            optimizer.reset()

        size = len(optimizers)
        if theta0s is None:
            theta = np.stack(
                [self.objective.initial_point(seed=int(seed)) for seed in seeds]
            )
        else:
            theta = np.array(theta0s, dtype=float)
        if theta.shape != (size, self.objective.num_parameters):
            raise ValueError("theta0s has the wrong shape")

        results = [VQEResult() for _ in range(size)]
        energies = self.objective.batch_energies(theta)
        self._record_all(results, 0, energies, energies, theta)

        dim = self.objective.num_parameters
        for index in range(1, iterations):
            # All chains' theta +- ck*delta pairs as one (2S, P) batch;
            # rows keep per-chain (plus, minus) order.
            rows = np.empty((2 * size, dim))
            deltas = []
            for i, optimizer in enumerate(optimizers):
                k = optimizer.state.iteration
                ck = optimizer.perturbation_size(k)
                delta = optimizer._rademacher(dim)
                deltas.append((ck, delta))
                rows[2 * i] = theta[i] + ck * delta
                rows[2 * i + 1] = theta[i] - ck * delta
            pair_energies = self.objective.batch_energies(rows)

            candidates = np.empty_like(theta)
            for i, optimizer in enumerate(optimizers):
                k = optimizer.state.iteration
                ck, delta = deltas[i]
                gradient = (
                    (pair_energies[2 * i] - pair_energies[2 * i + 1])
                    / (2.0 * ck)
                    * (1.0 / delta)
                )
                candidates[i] = optimizer._apply_step(
                    theta[i], optimizer.learning_rate(k) * gradient
                )
                optimizer._count_eval()
                optimizer._count_eval()

            energies = self.objective.batch_energies(candidates)
            theta = candidates
            for i, optimizer in enumerate(optimizers):
                optimizer.feedback(True, theta[i], float(energies[i]))
            self._record_all(results, index, energies, energies, theta)

        for i, result in enumerate(results):
            result.final_theta = theta[i].copy()
            # Same accounting as a serial VQE(IdealBackend) run: one job
            # (= one circuit) per objective evaluation the optimizer sees.
            result.total_jobs = 3 * len(result.records) - 2
            result.total_circuits = result.total_jobs
        return results

    def _record_all(
        self,
        results: List[VQEResult],
        index: int,
        machine_energies: np.ndarray,
        candidate_energies: np.ndarray,
        theta: np.ndarray,
    ) -> None:
        true_energies: Optional[np.ndarray] = None
        if self.track_true_energy:
            true_energies = self.objective.batch_energies(theta)
        for i, result in enumerate(results):
            result.records.append(
                IterationRecord(
                    index=index,
                    machine_energy=float(machine_energies[i]),
                    true_energy=(
                        float(true_energies[i]) if true_energies is not None else None
                    ),
                    candidate_energy=float(candidate_energies[i]),
                    tm=None,
                    gm=None,
                    gp=None,
                    retries=0,
                    accepted_by_controller=True,
                    accepted_by_optimizer=True,
                )
            )


def curve_rms_error(points: Sequence[CurvePoint]) -> float:
    """RMS deviation of the estimated curve from FCI across bond lengths."""
    if not points:
        raise ValueError("empty curve")
    errors = np.array([p.error_vs_fci for p in points])
    return float(np.sqrt(np.mean(errors**2)))


def binding_energy(points: Sequence[CurvePoint]) -> float:
    """Estimated well depth: E(max r) - min E(r) (reaction-rate proxy)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    energies = [p.estimated_energy for p in points]
    return float(energies[-1] - min(energies))
