"""VQE run records and results.

Both record types serialize losslessly to plain dicts (``to_dict`` /
``from_dict``) so runs survive process boundaries (the parallel executor)
and disk caches. Floats round-trip exactly through JSON's shortest-repr
encoding, so a deserialized result is bit-equal to the original.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """Everything observed during one accepted VQA iteration."""

    index: int
    machine_energy: float
    true_energy: Optional[float]
    candidate_energy: float
    tm: Optional[float]
    gm: Optional[float]
    gp: Optional[float]
    retries: int
    accepted_by_controller: bool
    accepted_by_optimizer: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IterationRecord":
        return cls(**{f: data[f] for f in cls.__dataclass_fields__})


@dataclass
class VQEResult:
    """Outcome of one VQE run."""

    records: List[IterationRecord] = field(default_factory=list)
    final_theta: Optional[np.ndarray] = None
    total_jobs: int = 0
    total_circuits: int = 0
    total_retries: int = 0
    forced_accepts: int = 0

    @property
    def iterations(self) -> int:
        return len(self.records)

    @property
    def machine_energies(self) -> np.ndarray:
        """Per-iteration machine-observed objective (the paper's plots)."""
        return np.array([r.machine_energy for r in self.records])

    @property
    def true_energies(self) -> np.ndarray:
        """Per-iteration transient-free exact energies of the accepted
        parameters (available in simulation only)."""
        values = [r.true_energy for r in self.records]
        if any(v is None for v in values):
            raise ValueError("true energies were not tracked for this run")
        return np.array(values)

    @property
    def final_machine_energy(self) -> float:
        if not self.records:
            raise ValueError("empty run")
        return self.records[-1].machine_energy

    @property
    def final_true_energy(self) -> float:
        values = self.true_energies
        return float(values[-1])

    def tail_true_energy(self, fraction: float = 0.1) -> float:
        """Mean true energy over the last ``fraction`` of iterations.

        More robust than the single final point for comparing schemes, in
        the spirit of the paper's converged-expectation comparisons.
        """
        values = self.true_energies
        tail = max(1, int(len(values) * fraction))
        return float(np.mean(values[-tail:]))

    def tail_machine_energy(self, fraction: float = 0.1) -> float:
        values = self.machine_energies
        tail = max(1, int(len(values) * fraction))
        return float(np.mean(values[-tail:]))

    @property
    def skip_fraction(self) -> float:
        if not self.records:
            return 0.0
        return self.total_retries / max(1, self.total_jobs)

    def summary(self) -> Dict[str, float]:
        return {
            "iterations": float(self.iterations),
            "final_machine_energy": self.final_machine_energy,
            "total_jobs": float(self.total_jobs),
            "total_circuits": float(self.total_circuits),
            "total_retries": float(self.total_retries),
            "forced_accepts": float(self.forced_accepts),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": [record.to_dict() for record in self.records],
            "final_theta": (
                None
                if self.final_theta is None
                else [float(v) for v in np.asarray(self.final_theta, dtype=float)]
            ),
            "total_jobs": int(self.total_jobs),
            "total_circuits": int(self.total_circuits),
            "total_retries": int(self.total_retries),
            "forced_accepts": int(self.forced_accepts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VQEResult":
        theta = data.get("final_theta")
        return cls(
            records=[IterationRecord.from_dict(r) for r in data.get("records", [])],
            final_theta=None if theta is None else np.asarray(theta, dtype=float),
            total_jobs=int(data.get("total_jobs", 0)),
            total_circuits=int(data.get("total_circuits", 0)),
            total_retries=int(data.get("total_retries", 0)),
            forced_accepts=int(data.get("forced_accepts", 0)),
        )
