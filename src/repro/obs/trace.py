"""Context-managed span trees with near-zero disabled overhead.

A :class:`Span` records a name, a category (the "phase" reports group
by: compile / execute / kernel / store / fleet / ...), free-form attrs
and a monotonic start + duration.  Spans nest: each thread keeps its
own current-span stack, and structural mutations (attaching children,
registering roots) go through one tracer lock so worker threads can
attach under a job span owned by another thread (see
:meth:`Tracer.attach`).

Tracing is off by default.  ``REPRO_TRACE=1`` enables it,
``REPRO_TRACE_SAMPLE=N`` keeps every Nth kernel-site span (the only
span family hot enough to need rate limiting; ``1`` keeps all, ``0``
drops all), and ``REPRO_TRACE_EXPORT=path`` writes a Chrome trace at
process exit.  When disabled, ``Tracer.span()`` returns a shared no-op
context manager and the hot-loop guard is a single attribute read
(``TRACER.enabled``), so instrumented kernels stay within noise of
uninstrumented ones.

Determinism contract: spans never touch content hashes, RNG streams or
stored result payloads.  Sampling uses a per-thread counter, never an
RNG, so a traced run consumes exactly the same random numbers as an
untraced one.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import clock

TRACE_ENV = "REPRO_TRACE"
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"
EXPORT_ENV = "REPRO_TRACE_EXPORT"

#: Default kernel-site sampling stride when tracing is on and
#: ``REPRO_TRACE_SAMPLE`` is unset: keep one site span in 64.  Keeps a
#: 120-iteration VQE trace in the tens of thousands of events instead
#: of millions while still feeding the roofline with real samples.
DEFAULT_KERNEL_STRIDE = 64


class Span:
    """One timed region.  Use via ``TRACER.span(...)`` as a context manager."""

    __slots__ = (
        "name",
        "category",
        "attrs",
        "start",
        "duration",
        "children",
        "thread_id",
        "thread_name",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: Dict[str, Any]):
        self.name = name
        self.category = category
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.children: List["Span"] = []
        self.thread_id = 0
        self.thread_name = ""
        self._tracer = tracer

    def set(self, **attrs: Any) -> "Span":
        """Attach attrs mid-span (e.g. gate counts known only at exit)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        with tracer._lock:
            if parent is None:
                tracer.roots.append(self)
            else:
                parent.children.append(self)
        stack.append(self)
        self.start = clock.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.duration = clock.perf_counter() - self.start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"duration={self.duration:.6f}, children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-wide span collector.

    ``enabled`` is a plain attribute so hot loops can guard on it with
    one read; everything structural happens under ``_lock``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: List[Span] = []
        self.enabled = False
        self.kernel_stride = DEFAULT_KERNEL_STRIDE
        self.export_path: Optional[str] = None
        self._refresh_from_env()

    # -- configuration ---------------------------------------------------

    def _refresh_from_env(self) -> None:
        self.enabled = os.environ.get(TRACE_ENV, "") == "1"
        self.export_path = os.environ.get(EXPORT_ENV) or None
        raw = os.environ.get(SAMPLE_ENV, "")
        if raw:
            try:
                value = float(raw)
            except ValueError:
                value = float(DEFAULT_KERNEL_STRIDE)
            if value <= 0:
                self.kernel_stride = 0
            elif value < 1:
                # A rate in (0, 1): keep roughly that fraction of sites.
                self.kernel_stride = max(1, round(1.0 / value))
            else:
                self.kernel_stride = int(value)
        else:
            self.kernel_stride = DEFAULT_KERNEL_STRIDE

    def configure(
        self,
        enabled: Optional[bool] = None,
        kernel_stride: Optional[int] = None,
        export_path: Optional[str] = None,
    ) -> None:
        """Override env-derived settings (tests and the CLI use this)."""
        if enabled is not None:
            self.enabled = enabled
        if kernel_stride is not None:
            self.kernel_stride = kernel_stride
        if export_path is not None:
            self.export_path = export_path

    def reset(self) -> None:
        """Drop all recorded spans and re-read the environment."""
        with self._lock:
            self.roots = []
        self._local = threading.local()
        self._refresh_from_env()

    # -- span creation ---------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, category: str = "misc", **attrs: Any):
        """Start a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, category, attrs)

    def kernel_span(self, name: str, **attrs: Any):
        """A sampled per-site span for simulator inner loops.

        Applies the ``REPRO_TRACE_SAMPLE`` stride with a per-thread
        counter (deterministic, RNG-free): stride N keeps every Nth
        site span on each thread.  Callers still guard the call itself
        on ``TRACER.enabled`` so the disabled path costs one attribute
        read.
        """
        if not self.enabled:
            return NOOP_SPAN
        stride = self.kernel_stride
        if stride <= 0:
            return NOOP_SPAN
        count = getattr(self._local, "kernel_count", 0)
        self._local.kernel_count = count + 1
        if count % stride:
            return NOOP_SPAN
        return Span(self, name, "kernel", attrs)

    @contextmanager
    def attach(self, parent: Optional[Span]):
        """Adopt ``parent`` as this thread's current span.

        Fleet worker threads (and any helper threads) run inside
        ``attach(job_span)`` so their spans reassemble into the job's
        tree instead of becoming disconnected roots.  Safe to call with
        ``None`` or while disabled (no-op).
        """
        if not self.enabled or parent is None or isinstance(parent, _NoopSpan):
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            if stack and stack[-1] is parent:
                stack.pop()

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def all_spans(self) -> List[Span]:
        """Every recorded span, depth first from each root."""
        with self._lock:
            roots = list(self.roots)
        spans: List[Span] = []
        for root in roots:
            spans.extend(root.walk())
        return spans


#: Process-wide tracer.  Import sites read ``TRACER.enabled`` inline in
#: hot loops; everything else goes through ``span()`` / ``attach()``.
TRACER = Tracer()

# Only the process that created the tracer exports at exit.  Forked
# ProcessPoolExecutor children inherit this pid and therefore skip the
# atexit export instead of clobbering the parent's trace file.
_OWNER_PID = os.getpid()


def _export_at_exit() -> None:  # pragma: no cover - exercised via CLI/CI
    if not TRACER.enabled or not TRACER.export_path:
        return
    if os.getpid() != _OWNER_PID:
        return
    if not TRACER.roots:
        return
    from repro.obs.export import export_chrome_trace

    export_chrome_trace(TRACER.export_path)


import atexit  # noqa: E402  (registration belongs next to its hook)

atexit.register(_export_at_exit)
