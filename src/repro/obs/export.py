"""Chrome trace-event export, validation, and store persistence.

The export format is the Chrome/Perfetto trace-event JSON object form:
``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}``
with one complete ("X") event per span (microsecond ``ts``/``dur``) and
one metadata ("M") event naming each thread.  Load the file at
https://ui.perfetto.dev or chrome://tracing.

``otherData`` carries the metrics snapshot and the per-phase summary so
a single file feeds both ``repro.obs report`` and the cache scoreboard.
Summaries also persist into ``repro.store`` as a ``traces`` payload
(schema v3) so profiles survive next to the results they explain.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER, Span, Tracer

#: Event keys required by the trace-event format (all events).
_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def chrome_trace_events(tracer: Optional[Tracer] = None) -> List[Dict[str, Any]]:
    """Flatten the tracer's span trees into Chrome trace events."""
    tracer = tracer or TRACER
    events: List[Dict[str, Any]] = []
    thread_names: Dict[int, str] = {}
    import os

    pid = os.getpid()
    for span in tracer.all_spans():
        tid = span.thread_id or 0
        thread_names.setdefault(tid, span.thread_name or f"thread-{tid}")
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if span.attrs:
            event["args"] = dict(span.attrs)
        events.append(event)
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return events


def build_trace_document(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The full exportable trace object: events + metrics + phase summary."""
    from repro.obs.report import phase_breakdown

    tracer = tracer or TRACER
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "metrics": METRICS.snapshot(),
            "phases": phase_breakdown(tracer=tracer),
        },
    }


def export_chrome_trace(
    path: str, tracer: Optional[Tracer] = None
) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path`` and return the document."""
    document = build_trace_document(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def validate_chrome_trace(document: Any) -> List[Dict[str, Any]]:
    """Check ``document`` against the trace-event schema.

    Accepts either the object form (``{"traceEvents": [...]}``) or the
    bare event-array form.  Returns the event list on success; raises
    ``ValueError`` naming the first offending event otherwise.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object missing 'traceEvents' list")
    elif isinstance(document, list):
        events = document
    else:
        raise ValueError(f"not a trace document: {type(document).__name__}")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event #{index} missing required key {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"event #{index}: 'name' must be a string")
        if not isinstance(event["ph"], str) or not event["ph"]:
            raise ValueError(f"event #{index}: 'ph' must be a phase letter")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"event #{index}: 'ts' must be numeric")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event #{index}: complete event needs numeric 'dur' >= 0"
                )
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"event #{index}: 'args' must be an object")
    return events


def trace_summary(
    tracer: Optional[Tracer] = None, label: str = ""
) -> Dict[str, Any]:
    """Compact trace + metrics summary suitable for store persistence."""
    from repro.obs.report import phase_breakdown, root_wall_seconds

    tracer = tracer or TRACER
    return {
        "label": label,
        "wall_s": root_wall_seconds(tracer=tracer),
        "span_count": len(tracer.all_spans()),
        "phases": phase_breakdown(tracer=tracer),
        "metrics": METRICS.snapshot(),
    }


def persist_trace_summary(store, summary: Dict[str, Any]) -> int:
    """Append a summary to an ``ExperimentStore``'s ``traces`` payloads.

    ``store`` is an ``repro.store.ExperimentStore`` (imported lazily to
    keep obs free of a hard store dependency).  Returns the trace id.
    """
    return store.append_trace(summary, label=summary.get("label", ""))


def load_trace_summaries(store, limit: int = 10) -> List[Dict[str, Any]]:
    """Most-recent-first trace summaries previously persisted in a store."""
    return store.traces(limit=limit)


def span_tree_lines(span: Span, indent: int = 0) -> List[str]:
    """Render one span tree as indented text (debugging / CLI)."""
    line = (
        f"{'  ' * indent}{span.name} [{span.category}] "
        f"{span.duration * 1e3:.3f} ms"
    )
    lines = [line]
    for child in span.children:
        lines.extend(span_tree_lines(child, indent + 1))
    return lines
