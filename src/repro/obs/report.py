"""Per-phase time breakdown and cache scoreboard.

A report answers "where did the wall clock go": span self-time grouped
by category (compile / execute / kernel / store / fleet / ...), plus a
scoreboard of every ``cache.*`` counter family.  Reports build either
from the live in-process tracer or from an exported Chrome trace file,
so ``python -m repro.obs report`` works on any run that set
``REPRO_TRACE_EXPORT``.

Self-time accounting partitions each root span's duration exactly: a
span's self time is its duration minus its children's durations,
attributed to its own category.  Summed over the tree this reproduces
the job span's wall time (separate worker threads add their own busy
time on top), which is what makes the per-phase table trustworthy.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER, Tracer

#: Containment slack (microseconds) when re-nesting exported events.
_NEST_EPSILON_US = 1e-3


def _tracer_phase_data(tracer: Tracer) -> Tuple[Dict[str, Dict[str, float]], float]:
    phases: Dict[str, Dict[str, float]] = {}
    wall = 0.0
    for root in list(tracer.roots):
        wall += root.duration
        for span in root.walk():
            child_total = sum(child.duration for child in span.children)
            self_s = max(span.duration - child_total, 0.0)
            bucket = phases.setdefault(
                span.category, {"total_s": 0.0, "self_s": 0.0, "count": 0}
            )
            bucket["total_s"] += span.duration
            bucket["self_s"] += self_s
            bucket["count"] += 1
    return phases, wall


def _events_phase_data(
    events: Sequence[Dict[str, Any]],
) -> Tuple[Dict[str, Dict[str, float]], float]:
    """Re-nest exported complete events per thread and bucket self time.

    Events on one thread nest by interval containment (children start
    after and end before their parent), so a timestamp-ordered stack
    walk recovers each event's direct-children duration sum.
    """
    phases: Dict[str, Dict[str, float]] = {}
    wall = 0.0
    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        if event.get("ph") == "X":
            by_tid.setdefault(event.get("tid"), []).append(event)

    def close(frame: List[Any]) -> None:
        _end, child_us, event = frame
        dur_us = float(event.get("dur", 0.0))
        category = event.get("cat", "misc") or "misc"
        bucket = phases.setdefault(
            category, {"total_s": 0.0, "self_s": 0.0, "count": 0}
        )
        bucket["total_s"] += dur_us / 1e6
        bucket["self_s"] += max(dur_us - child_us, 0.0) / 1e6
        bucket["count"] += 1

    for tid_events in by_tid.values():
        tid_events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        stack: List[List[Any]] = []  # [end_ts_us, child_us, event]
        for event in tid_events:
            ts = float(event["ts"])
            dur = float(event.get("dur", 0.0))
            while stack and ts >= stack[-1][0] - _NEST_EPSILON_US:
                close(stack.pop())
            if stack:
                stack[-1][1] += dur
            else:
                wall += dur / 1e6
            stack.append([ts + dur, 0.0, event])
        while stack:
            close(stack.pop())
    return phases, wall


def phase_breakdown(
    tracer: Optional[Tracer] = None,
    events: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-category ``{total_s, self_s, count}`` from a tracer or events."""
    if events is not None:
        phases, _ = _events_phase_data(events)
    else:
        phases, _ = _tracer_phase_data(tracer or TRACER)
    return phases


def root_wall_seconds(
    tracer: Optional[Tracer] = None,
    events: Optional[Sequence[Dict[str, Any]]] = None,
) -> float:
    """Summed duration of top-level (job) spans."""
    if events is not None:
        _, wall = _events_phase_data(events)
    else:
        _, wall = _tracer_phase_data(tracer or TRACER)
    return wall


def cache_scoreboard(metrics: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Fold ``cache.<family>.<hits|misses|evictions>`` counters per family."""
    counters = (
        metrics.get("counters", {})
        if metrics is not None
        else METRICS.snapshot()["counters"]
    )
    families: Dict[str, Dict[str, Any]] = {}
    for name, value in counters.items():
        if not name.startswith("cache."):
            continue
        parts = name.split(".")
        if len(parts) < 3:
            continue
        family, stat = ".".join(parts[1:-1]), parts[-1]
        if stat not in ("hits", "misses", "evictions"):
            continue
        families.setdefault(
            family, {"hits": 0, "misses": 0, "evictions": 0}
        )[stat] = value
    for row in families.values():
        lookups = row["hits"] + row["misses"]
        row["hit_rate"] = row["hits"] / lookups if lookups else 0.0
    return families


def kernel_scoreboard(
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Fold ``kernel.<class>.<calls|bytes>`` counters per kernel class.

    The simulators' kernel dispatcher bumps one call counter and one
    estimated bytes-touched counter per gate application; folding them
    per class (diagonal / 1q-pair / 2q-quad / dense-k) shows which
    kernels carried a run.
    """
    counters = (
        metrics.get("counters", {})
        if metrics is not None
        else METRICS.snapshot()["counters"]
    )
    classes: Dict[str, Dict[str, Any]] = {}
    for name, value in counters.items():
        if not name.startswith("kernel."):
            continue
        parts = name.split(".")
        if len(parts) != 3 or parts[-1] not in ("calls", "bytes"):
            continue
        classes.setdefault(parts[1], {"calls": 0, "bytes": 0})[parts[-1]] = (
            value
        )
    return classes


def build_report(
    document: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Assemble the report dict from a trace document or the live tracer."""
    if document is not None:
        events = [
            e for e in document.get("traceEvents", []) if isinstance(e, dict)
        ]
        phases, wall = _events_phase_data(events)
        metrics = document.get("otherData", {}).get("metrics", {})
    else:
        phases, wall = _tracer_phase_data(tracer or TRACER)
        metrics = METRICS.snapshot()
    accounted = sum(bucket["self_s"] for bucket in phases.values())
    for bucket in phases.values():
        bucket["share"] = bucket["self_s"] / wall if wall else 0.0
    return {
        "wall_s": wall,
        "accounted_s": accounted,
        "coverage": accounted / wall if wall else 0.0,
        "phases": dict(
            sorted(phases.items(), key=lambda kv: -kv[1]["self_s"])
        ),
        "cache": cache_scoreboard({"counters": metrics.get("counters", {})}),
        "kernel": kernel_scoreboard(
            {"counters": metrics.get("counters", {})}
        ),
        "counters": metrics.get("counters", {}),
    }


def render_text(report: Dict[str, Any]) -> str:
    lines = [
        f"job wall time: {report['wall_s']:.3f} s "
        f"(accounted {report['accounted_s']:.3f} s, "
        f"coverage {report['coverage'] * 100:.1f}%)",
        "",
        f"{'phase':<12} {'self (s)':>10} {'total (s)':>10} "
        f"{'share':>7} {'spans':>7}",
    ]
    for category, bucket in report["phases"].items():
        lines.append(
            f"{category:<12} {bucket['self_s']:>10.3f} "
            f"{bucket['total_s']:>10.3f} "
            f"{bucket['share'] * 100:>6.1f}% {bucket['count']:>7}"
        )
    if report["cache"]:
        lines += ["", f"{'cache':<20} {'hits':>8} {'misses':>8} "
                      f"{'evict':>6} {'hit rate':>9}"]
        for family, row in sorted(report["cache"].items()):
            lines.append(
                f"{family:<20} {row['hits']:>8} {row['misses']:>8} "
                f"{row['evictions']:>6} {row['hit_rate'] * 100:>8.1f}%"
            )
    if report.get("kernel"):
        lines += ["", f"{'kernel class':<14} {'calls':>10} {'GiB touched':>12}"]
        for kernel_class, row in sorted(report["kernel"].items()):
            lines.append(
                f"{kernel_class:<14} {row['calls']:>10} "
                f"{row['bytes'] / 2**30:>12.3f}"
            )
    return "\n".join(lines)


def render_markdown(report: Dict[str, Any]) -> str:
    lines = [
        "## Phase breakdown",
        "",
        f"Job wall time **{report['wall_s']:.3f} s**, "
        f"coverage **{report['coverage'] * 100:.1f}%**.",
        "",
        "| phase | self (s) | total (s) | share | spans |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for category, bucket in report["phases"].items():
        lines.append(
            f"| {category} | {bucket['self_s']:.3f} | {bucket['total_s']:.3f} "
            f"| {bucket['share'] * 100:.1f}% | {bucket['count']} |"
        )
    if report["cache"]:
        lines += [
            "",
            "## Cache scoreboard",
            "",
            "| cache | hits | misses | evictions | hit rate |",
            "| --- | ---: | ---: | ---: | ---: |",
        ]
        for family, row in sorted(report["cache"].items()):
            lines.append(
                f"| {family} | {row['hits']} | {row['misses']} "
                f"| {row['evictions']} | {row['hit_rate'] * 100:.1f}% |"
            )
    if report.get("kernel"):
        lines += [
            "",
            "## Kernel scoreboard",
            "",
            "| kernel class | calls | GiB touched |",
            "| --- | ---: | ---: |",
        ]
        for kernel_class, row in sorted(report["kernel"].items()):
            lines.append(
                f"| {kernel_class} | {row['calls']} "
                f"| {row['bytes'] / 2**30:.3f} |"
            )
    return "\n".join(lines)


def render_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True)
