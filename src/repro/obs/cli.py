"""``python -m repro.obs`` — trace capture, reports and metrics.

Subcommands:

``trace <script> [args...]``
    Run a Python script under tracing and export a Chrome trace
    (default ``trace.json``; override with ``--out``).

``report``
    Per-phase time breakdown + cache scoreboard from an exported trace
    file (``--trace``, default ``$REPRO_TRACE_EXPORT`` or
    ``trace.json``) or from the latest summary in a store
    (``--store``).  ``--format text|json|markdown``.

``metrics``
    Dump the metrics snapshot embedded in a trace file or persisted in
    a store.

``validate``
    Check a trace file against the Chrome trace-event schema (CI uses
    this on the traced example sweep).
"""

from __future__ import annotations

import argparse
import json
import os
import runpy
import sys
from typing import Any, Dict, List, Optional

from repro.obs.export import (
    export_chrome_trace,
    load_trace_summaries,
    validate_chrome_trace,
)
from repro.obs.report import (
    build_report,
    render_json,
    render_markdown,
    render_text,
)
from repro.obs.trace import EXPORT_ENV, TRACER


def _default_trace_path() -> str:
    return os.environ.get(EXPORT_ENV) or "trace.json"


def _load_document(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"error: no trace file at {path!r} — run with REPRO_TRACE=1 and "
            f"REPRO_TRACE_EXPORT={path!r}, or use `python -m repro.obs trace`"
        )
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path!r} is not valid JSON: {exc}")


def _open_store(path: Optional[str]):
    from repro.store.store import open_store

    return open_store(path or None)


def cmd_trace(args: argparse.Namespace) -> int:
    TRACER.reset()
    TRACER.configure(enabled=True, export_path=args.out)
    if args.sample is not None:
        TRACER.configure(kernel_stride=args.sample)
    os.environ["REPRO_TRACE"] = "1"  # child processes inherit tracing
    sys.argv = [args.script] + list(args.script_args)
    try:
        runpy.run_path(args.script, run_name="__main__")
    finally:
        document = export_chrome_trace(args.out)
        print(
            f"wrote {args.out} "
            f"({len(document['traceEvents'])} events) — load it at "
            f"https://ui.perfetto.dev",
            file=sys.stderr,
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.store is not None:
        store = _open_store(args.store)
        try:
            summaries = load_trace_summaries(store, limit=1)
        finally:
            store.close()
        if not summaries:
            raise SystemExit("error: store holds no trace summaries")
        summary = summaries[0]
        report = {
            "wall_s": summary.get("wall_s", 0.0),
            "accounted_s": sum(
                b.get("self_s", 0.0)
                for b in summary.get("phases", {}).values()
            ),
            "phases": summary.get("phases", {}),
            "counters": summary.get("metrics", {}).get("counters", {}),
        }
        wall = report["wall_s"]
        report["coverage"] = report["accounted_s"] / wall if wall else 0.0
        for bucket in report["phases"].values():
            bucket.setdefault(
                "share", bucket.get("self_s", 0.0) / wall if wall else 0.0
            )
        from repro.obs.report import cache_scoreboard, kernel_scoreboard

        report["cache"] = cache_scoreboard({"counters": report["counters"]})
        report["kernel"] = kernel_scoreboard(
            {"counters": report["counters"]}
        )
    else:
        document = _load_document(args.trace or _default_trace_path())
        report = build_report(document=document)
    renderers = {
        "text": render_text,
        "json": render_json,
        "markdown": render_markdown,
    }
    print(renderers[args.format](report))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    if args.store is not None:
        store = _open_store(args.store)
        try:
            summaries = load_trace_summaries(store, limit=1)
        finally:
            store.close()
        if not summaries:
            raise SystemExit("error: store holds no trace summaries")
        metrics = summaries[0].get("metrics", {})
    else:
        document = _load_document(args.trace or _default_trace_path())
        metrics = document.get("otherData", {}).get("metrics", {})
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    for name, value in sorted(metrics.get("counters", {}).items()):
        print(f"{name:<44} {value}")
    for name, value in sorted(metrics.get("gauges", {}).items()):
        print(f"{name:<44} {value}")
    for name, summary in sorted(metrics.get("histograms", {}).items()):
        print(
            f"{name:<44} count={summary.get('count', 0)} "
            f"mean={summary.get('mean', 0.0):.6g}"
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    path = args.trace or _default_trace_path()
    document = _load_document(path)
    try:
        events = validate_chrome_trace(document)
    except ValueError as exc:
        print(f"INVALID: {path}: {exc}", file=sys.stderr)
        return 1
    categories = sorted(
        {e.get("cat", "") for e in events if e.get("ph") == "X"}
    )
    print(f"OK: {path}: {len(events)} events, categories: "
          f"{', '.join(c for c in categories if c)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing, metrics and profiling reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="run a script under tracing")
    trace.add_argument("script", help="path to the Python script to run")
    trace.add_argument("script_args", nargs="*", help="arguments for it")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace output path")
    trace.add_argument("--sample", type=int, default=None,
                       help="kernel-site sampling stride (1 = keep all)")
    trace.set_defaults(func=cmd_trace)

    report = sub.add_parser("report", help="per-phase breakdown + caches")
    report.add_argument("--trace", default=None,
                        help="trace file (default $REPRO_TRACE_EXPORT)")
    report.add_argument("--store", nargs="?", const="", default=None,
                        help="read latest summary from a store instead")
    report.add_argument("--format", choices=("text", "json", "markdown"),
                        default="text")
    report.set_defaults(func=cmd_report)

    metrics = sub.add_parser("metrics", help="dump the metrics snapshot")
    metrics.add_argument("--trace", default=None)
    metrics.add_argument("--store", nargs="?", const="", default=None)
    metrics.add_argument("--json", action="store_true")
    metrics.set_defaults(func=cmd_metrics)

    validate = sub.add_parser(
        "validate", help="check a trace file against the trace-event schema"
    )
    validate.add_argument("--trace", default=None)
    validate.set_defaults(func=cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
