"""Named counters, gauges and histograms with atomic bumps.

Unlike tracing, metrics are always on: a counter bump is one lock
acquisition and an int add, cheap enough for cache hit/miss accounting
and fleet scheduling decisions.  Hot kernel loops still guard their
bumps on ``TRACER.enabled`` so the per-gate path stays branch-only.

The process-wide registry is :data:`METRICS`.  Subsystems that need an
isolated namespace (e.g. per-service fleet telemetry) instantiate their
own :class:`MetricsRegistry` and mirror totals into the global one.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins numeric metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming summary of observations: count / total / min / max."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            mean = self.total / self.count if self.count else 0.0
            return {
                "count": self.count,
                "total": self.total,
                "mean": mean,
                "min": self.min,
                "max": self.max,
            }


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, table: Dict[str, Any], name: str, factory: Callable[[str], Any]):
        metric = table.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = table.get(name)
            if metric is None:
                metric = factory(name)
                table[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram)

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counter values, optionally filtered by name prefix."""
        with self._lock:
            items = list(self._counters.items())
        return {
            name: counter.value
            for name, counter in sorted(items)
            if name.startswith(prefix)
        }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time dump of every metric, JSON-serialisable."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in sorted(counters)},
            "gauges": {name: g.value for name, g in sorted(gauges)},
            "histograms": {name: h.summary() for name, h in sorted(histograms)},
        }

    def reset(self) -> None:
        """Drop every metric (tests isolate themselves with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide registry; the cache scoreboard and phase reports read it.
METRICS = MetricsRegistry()
