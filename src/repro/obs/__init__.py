"""repro.obs — unified tracing, metrics and profiling.

One substrate for every "where does the time go" question in the repo:

- :mod:`repro.obs.trace` — context-managed span trees
  (``REPRO_TRACE=1`` enables, ``REPRO_TRACE_SAMPLE`` rate-limits
  kernel-site spans, near-zero overhead when disabled).
- :mod:`repro.obs.metrics` — always-on counters / gauges / histograms
  (cache scoreboards, fleet telemetry, kernel byte/flop totals).
- :mod:`repro.obs.clock` — the only sanctioned reader of ``time``
  (lint rule RPR106 keeps it that way).
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and
  ``traces`` payloads in ``repro.store``.
- :mod:`repro.obs.report` — per-phase breakdown + cache scoreboard,
  also via ``python -m repro.obs report``.

Typical instrumentation:

    from repro.obs import TRACER, METRICS

    with TRACER.span("compile.route", category="compile", qubits=8):
        ...
    METRICS.counter("cache.plan.hits").inc()

Determinism contract: nothing here touches content hashes, RNG streams
or stored result payloads — results are bit-identical with tracing on.
"""

from repro.obs.clock import Stopwatch, monotonic, perf_counter, wall_time
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import (
    EXPORT_ENV,
    NOOP_SPAN,
    SAMPLE_ENV,
    TRACE_ENV,
    TRACER,
    Span,
    Tracer,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "TRACER",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "TRACE_ENV",
    "SAMPLE_ENV",
    "EXPORT_ENV",
    "Stopwatch",
    "perf_counter",
    "monotonic",
    "wall_time",
]
