"""The one place in the tree allowed to read the clock.

Every timing decision in the codebase routes through these helpers so
that time has a single owner: RPR106 (``direct-timing``) flags direct
``time.time()`` / ``time.perf_counter()`` / ``time.monotonic()`` calls
anywhere outside ``repro/obs/``.  Centralising the clock keeps span
timestamps, deadline arithmetic and reported wall clocks mutually
comparable, and gives tests one seam to freeze.
"""

from __future__ import annotations

import time


def perf_counter() -> float:
    """High-resolution monotonic clock for durations (seconds)."""
    return time.perf_counter()


def monotonic() -> float:
    """Monotonic clock for deadlines and timeouts (seconds)."""
    return time.monotonic()


def wall_time() -> float:
    """Wall-clock epoch seconds, for human-facing timestamps only.

    Never use this for durations or cache keys: it jumps with NTP and
    would leak nondeterminism into anything content-addressed.
    """
    return time.time()


class Stopwatch:
    """Context manager measuring elapsed wall time on the perf clock.

    >>> with Stopwatch() as clock:
    ...     work()
    >>> clock.elapsed
    0.0123...
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = perf_counter() - self.start
