"""Classical optimizers for VQA tuning.

The central API is step-based rather than callback-based: each iteration
the VQA driver hands the optimizer a *job-scoped* evaluator, and the
optimizer proposes the next candidate parameters. This shape is what lets
QISMET interpose its controller between proposal and acceptance.
"""

from repro.optimizers.base import IterativeOptimizer, OptimizerState
from repro.optimizers.spsa import SPSA, BlockingSPSA, ResamplingSPSA, SecondOrderSPSA
from repro.optimizers.gradient_descent import ParameterShiftGradientDescent
from repro.optimizers.scipy_wrappers import minimize_scipy

__all__ = [
    "IterativeOptimizer",
    "OptimizerState",
    "SPSA",
    "BlockingSPSA",
    "ResamplingSPSA",
    "SecondOrderSPSA",
    "ParameterShiftGradientDescent",
    "minimize_scipy",
]
