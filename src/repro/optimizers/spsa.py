"""Simultaneous Perturbation Stochastic Approximation (SPSA).

The paper's primary tuner (Spall 1992, the paper's [4]): each iteration
draws a Rademacher perturbation ``Delta`` and approximates the full
gradient from just two objective evaluations,

``g_k = (f(theta + c_k Delta) - f(theta - c_k Delta)) / (2 c_k) * Delta^{-1}``.

Comparison variants from the paper's Section 6.3:

* :class:`BlockingSPSA` — only accepts updates that do not worsen the
  objective (beyond a noise allowance);
* :class:`ResamplingSPSA` — averages multiple gradient samples per
  iteration (the paper uses 2x);
* :class:`SecondOrderSPSA` — Spall's adaptive 2SPSA, estimating Hessian
  information to precondition the gradient.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.optimizers.base import Evaluator, IterativeOptimizer, evaluate_many
from repro.utils.rng import SeedLike, ensure_rng


class SPSA(IterativeOptimizer):
    """Standard first-order SPSA with the classic gain schedules.

    ``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma`` with
    Spall's recommended exponents. ``A`` defaults to 10 % of the expected
    iteration count.
    """

    def __init__(
        self,
        a: float = 0.2,
        c: float = 0.15,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability: float = 50.0,
        trust_radius: Optional[float] = None,
        seed: SeedLike = None,
    ):
        super().__init__()
        if a <= 0 or c <= 0:
            raise ValueError("gains a and c must be positive")
        if trust_radius is not None and trust_radius <= 0:
            raise ValueError("trust_radius must be positive (or None)")
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability
        # Qiskit-SPSA-style trust region: the update norm is capped, so a
        # noise-inflated gradient magnitude cannot throw the parameters
        # arbitrarily far — but a noise-*flipped* gradient still walks the
        # full capped step in the wrong direction. This is why gradient
        # direction (not magnitude) is the quantity QISMET protects.
        self.trust_radius = trust_radius
        self.rng = ensure_rng(seed)

    def _apply_step(self, theta: np.ndarray, step: np.ndarray) -> np.ndarray:
        if self.trust_radius is not None:
            norm = float(np.linalg.norm(step))
            if norm > self.trust_radius:
                step = step * (self.trust_radius / norm)
        return theta - step

    # -- gain schedules ------------------------------------------------------

    def learning_rate(self, k: int) -> float:
        return self.a / (k + 1 + self.stability) ** self.alpha

    def perturbation_size(self, k: int) -> float:
        return self.c / (k + 1) ** self.gamma

    def _rademacher(self, dim: int) -> np.ndarray:
        return self.rng.integers(0, 2, size=dim) * 2.0 - 1.0

    # -- gradient estimation ----------------------------------------------------

    def gradient_estimate(
        self, theta: np.ndarray, evaluate: Evaluator, ck: float
    ) -> np.ndarray:
        delta = self._rademacher(theta.size)
        # The theta+/theta- pair is one batched call: batch-capable
        # evaluators (ideal/static/transient backends) push both points
        # through the vectorized simulator in a single NumPy pass.
        plus, minus = evaluate_many(
            evaluate, np.stack([theta + ck * delta, theta - ck * delta])
        )
        self._count_eval()
        self._count_eval()
        return (plus - minus) / (2.0 * ck) * (1.0 / delta)

    def propose(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        k = self.state.iteration
        gradient = self.gradient_estimate(theta, evaluate, self.perturbation_size(k))
        return self._apply_step(theta, self.learning_rate(k) * gradient)


class ResamplingSPSA(SPSA):
    """SPSA averaging ``resamplings`` independent gradient estimates.

    Doubles (for the paper's 2x) the per-iteration circuit cost in
    exchange for some robustness to transient-skewed single estimates.
    """

    def __init__(self, resamplings: int = 2, **kwargs):
        super().__init__(**kwargs)
        if resamplings < 1:
            raise ValueError("resamplings must be >= 1")
        self.resamplings = resamplings

    def propose(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        k = self.state.iteration
        ck = self.perturbation_size(k)
        # All resamplings' theta+/theta- pairs go out as one batched call
        # (2R rows). Deltas are drawn up front in the same RNG order as
        # the serial loop, and rows keep the serial evaluation order
        # (p1, m1, p2, m2, ...), so noise streams are consumed
        # identically.
        deltas = [self._rademacher(theta.size) for _ in range(self.resamplings)]
        rows = np.stack(
            [
                theta + sign * ck * delta
                for delta in deltas
                for sign in (1.0, -1.0)
            ]
        )
        energies = evaluate_many(evaluate, rows)
        for _ in range(2 * self.resamplings):
            self._count_eval()
        gradient = np.mean(
            [
                (energies[2 * i] - energies[2 * i + 1])
                / (2.0 * ck)
                * (1.0 / delta)
                for i, delta in enumerate(deltas)
            ],
            axis=0,
        )
        return self._apply_step(theta, self.learning_rate(k) * gradient)


class BlockingSPSA(SPSA):
    """SPSA that only accepts non-worsening updates.

    Mirrors Qiskit SPSA's ``blocking=True``: a candidate is rejected when
    its measured objective exceeds the current objective plus an allowance
    of twice the estimated measurement noise. As the paper notes, this
    avoids some transient-driven excursions but also hurts the ability to
    escape local minima.
    """

    def __init__(self, allowed_increase: Optional[float] = None, **kwargs):
        super().__init__(**kwargs)
        self.allowed_increase = allowed_increase
        self._noise_estimate = 0.0
        self._last_energies: list = []

    def accepts(self, current_energy: float, candidate_energy: float) -> bool:
        allowance = (
            self.allowed_increase
            if self.allowed_increase is not None
            else 2.0 * self._noise_estimate
        )
        return candidate_energy <= current_energy + allowance

    def feedback(self, accepted: bool, theta: np.ndarray, energy: float) -> None:
        super().feedback(accepted, theta, energy)
        self._last_energies.append(energy)
        if len(self._last_energies) > 16:
            del self._last_energies[0]
        if len(self._last_energies) >= 4:
            diffs = np.diff(self._last_energies)
            self._noise_estimate = float(np.std(diffs) / np.sqrt(2.0))


class SecondOrderSPSA(SPSA):
    """Spall's adaptive second-order SPSA (2SPSA).

    Estimates the Hessian action with two extra objective evaluations per
    iteration and preconditions the gradient with a smoothed, regularized
    diagonal curvature estimate. The paper observes this variant performs
    *worse* than the baseline under transients: a transient-corrupted
    curvature estimate misdirects every subsequent step through the
    smoothing memory — our implementation reproduces that failure mode by
    construction, not by hard-coding.
    """

    def __init__(self, regularization: float = 0.5, hessian_smoothing: bool = True, **kwargs):
        # Practical 2SPSA implementations bound the preconditioned step
        # (Spall recommends blocking/step safeguards); without one the
        # first wrong-signed curvature estimate ejects the iterate from
        # the descent basin entirely.
        kwargs.setdefault("trust_radius", 0.1)
        super().__init__(**kwargs)
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.regularization = regularization
        self.hessian_smoothing = hessian_smoothing
        self._hbar: Optional[np.ndarray] = None

    def propose(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        k = self.state.iteration
        ck = self.perturbation_size(k)
        delta1 = self._rademacher(theta.size)
        delta2 = self._rademacher(theta.size)

        # All four evaluation points of 2SPSA go out as one batched call,
        # rows in the serial evaluation order.
        plus, minus, plus_tilde, minus_tilde = evaluate_many(
            evaluate,
            np.stack(
                [
                    theta + ck * delta1,
                    theta - ck * delta1,
                    theta + ck * delta1 + ck * delta2,
                    theta - ck * delta1 + ck * delta2,
                ]
            ),
        )
        for _ in range(4):
            self._count_eval()

        gradient = (plus - minus) / (2.0 * ck) * (1.0 / delta1)
        # One-sided gradient difference gives the Hessian action along
        # delta2; we keep the *signed* diagonal estimate, as in Spall's
        # 2SPSA. Under transient noise the sign itself becomes unreliable,
        # and a wrong-signed curvature flips the step direction — the
        # failure mode the paper observes for this scheme.
        delta_g = ((plus_tilde - plus) - (minus_tilde - minus)) / (2.0 * ck**2)
        hessian_diag = delta_g * (1.0 / delta2) * (1.0 / delta1)

        if self.hessian_smoothing and self._hbar is not None:
            hessian_diag = (k * self._hbar + hessian_diag) / (k + 1)
        self._hbar = hessian_diag

        # Regularize: clamp the curvature magnitude into a bounded band
        # while preserving its (possibly noise-corrupted) sign. The band
        # keeps preconditioned steps within ~2x of first-order steps, so
        # the failure mode is misdirection (wrong-signed curvature), not
        # unbounded step explosion.
        magnitude = np.clip(
            np.abs(hessian_diag), self.regularization, 4.0 * self.regularization
        )
        sign = np.where(hessian_diag >= 0, 1.0, -1.0)
        safe = sign * magnitude
        return self._apply_step(theta, self.learning_rate(k) * gradient / safe)
