"""Optimizer protocol shared by the VQA driver and QISMET."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

Evaluator = Callable[[np.ndarray], float]


def evaluate_many(evaluate: Evaluator, thetas: np.ndarray) -> np.ndarray:
    """Evaluate several parameter vectors, batched when supported.

    Evaluators exposing an ``energies(thetas) -> np.ndarray`` method (the
    batch contract of :class:`repro.core.executor.PlainEvaluator`) get the
    whole block in one call — one quantum job per row, evaluated through
    the backend's batched fast path. Everything else falls back to one
    ``evaluate`` call per row, in row order, so seed-derived noise streams
    are consumed exactly as in the serial code path.
    """
    thetas = np.asarray(thetas, dtype=float)
    energies = getattr(evaluate, "energies", None)
    if energies is not None:
        return np.asarray(energies(thetas), dtype=float)
    return np.array([float(evaluate(theta)) for theta in thetas])


@dataclass
class OptimizerState:
    """Mutable per-run optimizer bookkeeping."""

    iteration: int = 0
    evaluations: int = 0
    history: List[float] = field(default_factory=list)


class IterativeOptimizer:
    """Base class for step-based optimizers.

    Lifecycle per VQA iteration:

    1. the driver calls :meth:`propose` with the current parameters and an
       evaluator scoped to the current quantum job — all objective queries
       the optimizer makes see the *same* transient noise instance;
    2. the driver measures the candidate's energy (possibly deciding, with
       QISMET, to retry) and then calls :meth:`feedback` with the outcome
       so stateful variants (blocking) can react.
    """

    def __init__(self) -> None:
        self.state = OptimizerState()

    def reset(self) -> None:
        self.state = OptimizerState()

    def propose(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        """Return candidate parameters for the next iteration."""
        raise NotImplementedError

    def accepts(self, current_energy: float, candidate_energy: float) -> bool:
        """Optimizer-level acceptance (default: always accept).

        This models Qiskit SPSA's *blocking* option; QISMET's controller is
        a separate, orthogonal acceptance layer.
        """
        return True

    def feedback(
        self,
        accepted: bool,
        theta: np.ndarray,
        energy: float,
    ) -> None:
        """Notify the optimizer of the iteration outcome."""
        self.state.iteration += 1
        self.state.history.append(energy)

    def _count_eval(self) -> None:
        self.state.evaluations += 1
