"""Scipy optimizer wrappers for noise-free reference optimizations.

The transient-aware machinery needs the step-based API, but noise-free
reference curves (the paper's orange "ideal" line) are conveniently
produced with scipy's COBYLA / Nelder-Mead on the exact objective.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import optimize


def minimize_scipy(
    objective: Callable[[np.ndarray], float],
    theta0: np.ndarray,
    method: str = "COBYLA",
    max_evaluations: int = 2000,
    tol: Optional[float] = None,
):
    """Minimize an objective with a scipy method; returns the OptimizeResult.

    Only derivative-free methods make sense here (the objective may be a
    sampled quantum expectation); supported: COBYLA, Nelder-Mead, Powell.
    """
    supported = {"COBYLA", "Nelder-Mead", "Powell"}
    if method not in supported:
        raise ValueError(f"method must be one of {sorted(supported)}")
    options = {"maxiter": max_evaluations}
    if method == "COBYLA":
        options = {"maxiter": max_evaluations}
    return optimize.minimize(
        objective,
        np.asarray(theta0, dtype=float),
        method=method,
        tol=tol,
        options=options,
    )
