"""Parameter-shift gradient descent.

For rotation-generated parameter gates the exact analytic gradient is
``df/dtheta_i = (f(theta_i + pi/2) - f(theta_i - pi/2)) / 2``. Costly
(2 evaluations per parameter per step) but exact in the noiseless limit;
useful for validating SPSA and for small ansatz circuits.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import Evaluator, IterativeOptimizer


class ParameterShiftGradientDescent(IterativeOptimizer):
    """Plain gradient descent with parameter-shift gradients."""

    def __init__(self, learning_rate: float = 0.1, decay: float = 0.0):
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if decay < 0:
            raise ValueError("decay must be non-negative")
        self.learning_rate = learning_rate
        self.decay = decay

    def gradient(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        grad = np.empty_like(theta)
        shift = np.pi / 2.0
        for i in range(theta.size):
            plus = theta.copy()
            minus = theta.copy()
            plus[i] += shift
            minus[i] -= shift
            grad[i] = (evaluate(plus) - evaluate(minus)) / 2.0
            self._count_eval()
            self._count_eval()
        return grad

    def propose(self, theta: np.ndarray, evaluate: Evaluator) -> np.ndarray:
        k = self.state.iteration
        rate = self.learning_rate / (1.0 + self.decay * k)
        return np.asarray(theta, dtype=float) - rate * self.gradient(theta, evaluate)
